package pbft

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"massbft/internal/keys"
)

// router is a deterministic in-memory message bus for unit-testing instances
// without the network emulator: messages queue FIFO and are pumped until
// drained. Virtual timers are kept in a sorted list and fired by advance().
type router struct {
	t         *testing.T
	instances map[keys.NodeID]*Instance
	queue     []queued
	timers    []timer
	now       time.Duration
	// drop returns true to discard a message (link-level fault injection).
	drop func(from, to keys.NodeID, m Msg) bool
}

type queued struct {
	from, to keys.NodeID
	m        Msg
}

type timer struct {
	at time.Duration
	fn func()
}

func newRouter(t *testing.T) *router {
	return &router{t: t, instances: make(map[keys.NodeID]*Instance)}
}

func (r *router) send(from keys.NodeID) func(keys.NodeID, Msg) {
	return func(to keys.NodeID, m Msg) {
		if r.drop != nil && r.drop(from, to, m) {
			return
		}
		r.queue = append(r.queue, queued{from, to, m})
	}
}

func (r *router) after(d time.Duration, fn func()) {
	r.timers = append(r.timers, timer{r.now + d, fn})
}

// pump delivers queued messages until quiescent.
func (r *router) pump() {
	for len(r.queue) > 0 {
		q := r.queue[0]
		r.queue = r.queue[1:]
		if in, ok := r.instances[q.to]; ok {
			in.Handle(q.from, q.m)
		}
	}
}

// advance fires all timers up to d from now, pumping messages in between.
func (r *router) advance(d time.Duration) {
	deadline := r.now + d
	for {
		r.pump()
		sort.SliceStable(r.timers, func(i, j int) bool { return r.timers[i].at < r.timers[j].at })
		if len(r.timers) == 0 || r.timers[0].at > deadline {
			break
		}
		tm := r.timers[0]
		r.timers = r.timers[1:]
		r.now = tm.at
		tm.fn()
	}
	r.now = deadline
	r.pump()
}

type delivered struct {
	slot    uint64
	payload []byte
	cert    *keys.Certificate
}

// buildGroup creates a PBFT group of size n with per-node delivery logs.
func buildGroup(t *testing.T, n int, mutate func(id keys.NodeID, cfg *Config)) (*router, []*Instance, []*[]delivered, *keys.Registry) {
	t.Helper()
	pairs, reg, err := keys.GenerateCluster([]int{n}, 11)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]keys.NodeID, n)
	for j := 0; j < n; j++ {
		members[j] = keys.NodeID{Group: 0, Index: j}
	}
	r := newRouter(t)
	instances := make([]*Instance, n)
	logs := make([]*[]delivered, n)
	for j := 0; j < n; j++ {
		log := &[]delivered{}
		logs[j] = log
		cfg := Config{
			Self:     pairs[0][j],
			Members:  members,
			Registry: reg,
			Send:     r.send(members[j]),
			After:    r.after,
			Deliver: func(slot uint64, payload []byte, cert *keys.Certificate) {
				*log = append(*log, delivered{slot, payload, cert})
			},
		}
		if mutate != nil {
			mutate(members[j], &cfg)
		}
		in := New(cfg)
		instances[j] = in
		r.instances[members[j]] = in
	}
	return r, instances, logs, reg
}

func TestCommitHappyPath(t *testing.T) {
	r, ins, logs, reg := buildGroup(t, 4, nil)
	if err := ins[0].Propose([]byte("entry-1")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	for j, log := range logs {
		if len(*log) != 1 {
			t.Fatalf("node %d delivered %d entries, want 1", j, len(*log))
		}
		got := (*log)[0]
		if got.slot != 0 || !bytes.Equal(got.payload, []byte("entry-1")) {
			t.Fatalf("node %d delivered wrong slot/payload", j)
		}
		if err := reg.VerifyCertificate(got.cert); err != nil {
			t.Fatalf("node %d: bad certificate: %v", j, err)
		}
	}
}

// TestValidateHookBlocksInvalidProposal: replicas refuse to vote on a
// proposal their Validate hook rejects, so it never reaches quorum — the
// application-level defense against a Byzantine leader proposing fabricated
// content (core wires client-signature verification here). Valid proposals
// and nil no-op payloads flow normally.
func TestValidateHookBlocksInvalidProposal(t *testing.T) {
	r, ins, logs, _ := buildGroup(t, 4, func(id keys.NodeID, cfg *Config) {
		cfg.ViewChangeTimeout = 100 * time.Millisecond
		cfg.Validate = func(payload []byte) bool { return !bytes.HasPrefix(payload, []byte("evil")) }
	})
	if err := ins[0].Propose([]byte("evil-entry")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	for j, log := range logs {
		if len(*log) != 0 {
			t.Fatalf("node %d delivered a rejected proposal", j)
		}
	}
	// The slot is poisoned for this view (each replica refused its first
	// pre-prepare). A fresh valid proposal on the next slot still gathers a
	// quorum, but in-order delivery holds it behind the wedged slot.
	if err := ins[0].Propose([]byte("good-entry")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	// The protocol layer's liveness watchdog (core watches lastLocalProgress)
	// suspects the leader; the resulting view change fills the rejected slot
	// with a no-op and releases the pipeline.
	for j := 1; j < 4; j++ {
		ins[j].SuspectLeader()
	}
	r.advance(time.Second)
	for j, log := range logs {
		var got []byte
		for _, d := range *log {
			if d.payload != nil {
				got = d.payload
			}
		}
		if !bytes.Equal(got, []byte("good-entry")) {
			t.Fatalf("node %d: valid proposal did not commit after view change (log %d entries)", j, len(*log))
		}
	}
}

func TestNonLeaderCannotPropose(t *testing.T) {
	_, ins, _, _ := buildGroup(t, 4, nil)
	if err := ins[1].Propose([]byte("x")); err == nil {
		t.Fatal("non-leader Propose succeeded")
	}
}

func TestMultipleSlotsInOrder(t *testing.T) {
	r, ins, logs, _ := buildGroup(t, 4, nil)
	for i := 0; i < 5; i++ {
		if err := ins[0].Propose([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r.pump()
	for j, log := range logs {
		if len(*log) != 5 {
			t.Fatalf("node %d delivered %d, want 5", j, len(*log))
		}
		for i, d := range *log {
			if d.slot != uint64(i) || string(d.payload) != fmt.Sprintf("e%d", i) {
				t.Fatalf("node %d slot %d: got %q", j, d.slot, d.payload)
			}
		}
	}
}

func TestCommitWithFSilentFollowers(t *testing.T) {
	// n=4, f=1: one silent (crashed) follower must not block commit.
	r, ins, logs, _ := buildGroup(t, 4, nil)
	dead := keys.NodeID{Group: 0, Index: 3}
	r.drop = func(from, to keys.NodeID, m Msg) bool { return from == dead || to == dead }
	if err := ins[0].Propose([]byte("e")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	for j := 0; j < 3; j++ {
		if len(*logs[j]) != 1 {
			t.Fatalf("node %d delivered %d, want 1", j, len(*logs[j]))
		}
	}
	if len(*logs[3]) != 0 {
		t.Fatal("dead node delivered")
	}
}

func TestNoCommitWithoutQuorum(t *testing.T) {
	// Drop everything to 2 of 4 nodes: only 2 remain, below quorum 3.
	r, ins, logs, _ := buildGroup(t, 4, nil)
	r.drop = func(from, to keys.NodeID, m Msg) bool {
		return to.Index >= 2 || from.Index >= 2
	}
	if err := ins[0].Propose([]byte("e")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	for j, log := range logs {
		if len(*log) != 0 {
			t.Fatalf("node %d delivered without quorum", j)
		}
	}
}

func TestSkipPrepareTwoPhase(t *testing.T) {
	r, ins, logs, reg := buildGroup(t, 4, func(id keys.NodeID, cfg *Config) { cfg.SkipPrepare = true })
	if err := ins[0].Propose([]byte("accept-msg")); err != nil {
		t.Fatal(err)
	}
	// Count message kinds: skip-prepare must produce no Prepare messages.
	sawPrepare := false
	r.drop = func(from, to keys.NodeID, m Msg) bool {
		if _, ok := m.(*Prepare); ok {
			sawPrepare = true
		}
		return false
	}
	r.pump()
	if sawPrepare {
		t.Fatal("skip-prepare mode sent Prepare messages")
	}
	for j, log := range logs {
		if len(*log) != 1 {
			t.Fatalf("node %d delivered %d, want 1", j, len(*log))
		}
		if err := reg.VerifyCertificate((*log)[0].cert); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTamperedPrePrepareRejected(t *testing.T) {
	r, ins, logs, _ := buildGroup(t, 4, nil)
	// Byzantine relay: flip payload bytes of pre-prepares to node 2.
	r.drop = func(from, to keys.NodeID, m Msg) bool {
		if pp, ok := m.(*PrePrepare); ok && to.Index == 2 {
			bad := *pp
			bad.Payload = append([]byte("EVIL"), pp.Payload...)
			r.queue = append(r.queue, queued{from, to, &bad})
			return true
		}
		return false
	}
	if err := ins[0].Propose([]byte("e")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	// Node 2 rejects the tampered pre-prepare (digest mismatch) but still
	// commits via the other nodes' messages? No: without pre-prepare it
	// cannot commit. Nodes 0,1,3 have quorum 3 and commit.
	for j := range logs {
		if j == 2 {
			if len(*logs[j]) != 0 {
				t.Fatal("node 2 accepted tampered payload")
			}
			continue
		}
		if len(*logs[j]) != 1 {
			t.Fatalf("node %d delivered %d, want 1", j, len(*logs[j]))
		}
	}
}

func TestForgedLeaderSignatureRejected(t *testing.T) {
	r, ins, logs, _ := buildGroup(t, 4, nil)
	// Node 1 (not leader) forges a pre-prepare claiming to be from leader.
	forged := &PrePrepare{
		View: 0, Slot: 0, Digest: keys.Hash([]byte("fake")), Payload: []byte("fake"),
	}
	forged.Sig = keys.Signature{Signer: keys.NodeID{Group: 0, Index: 0}, Sig: make([]byte, 64)}
	ins[2].Handle(keys.NodeID{Group: 0, Index: 0}, forged)
	r.pump()
	if len(*logs[2]) != 0 {
		t.Fatal("forged pre-prepare accepted")
	}
	_ = ins
}

func TestViewChangeOnLeaderCrash(t *testing.T) {
	r, ins, logs, _ := buildGroup(t, 4, func(id keys.NodeID, cfg *Config) {
		cfg.ViewChangeTimeout = 100 * time.Millisecond
	})
	leader := keys.NodeID{Group: 0, Index: 0}
	// Leader proposes, then crashes before its pre-prepare reaches anyone.
	crashed := false
	r.drop = func(from, to keys.NodeID, m Msg) bool {
		if crashed && (from == leader || to == leader) {
			return true
		}
		// Drop the commit phase of the first attempt to strand the proposal.
		if _, ok := m.(*Commit); ok && !crashed {
			return true
		}
		return false
	}
	if err := ins[0].Propose([]byte("stranded")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	crashed = true
	r.advance(time.Second)
	// View must have moved past 0 and the stranded entry must be delivered
	// (it was prepared by the correct replicas, so the new leader re-proposes
	// it).
	if ins[1].View() == 0 {
		t.Fatalf("no view change happened; view=%d", ins[1].View())
	}
	for j := 1; j < 4; j++ {
		if len(*logs[j]) != 1 || !bytes.Equal((*logs[j])[0].payload, []byte("stranded")) {
			t.Fatalf("node %d: prepared entry not re-proposed after view change: %v", j, *logs[j])
		}
	}
}

func TestViewChangeNewLeaderCanPropose(t *testing.T) {
	r, ins, logs, _ := buildGroup(t, 4, func(id keys.NodeID, cfg *Config) {
		cfg.ViewChangeTimeout = 100 * time.Millisecond
	})
	leader := keys.NodeID{Group: 0, Index: 0}
	crashed := true
	r.drop = func(from, to keys.NodeID, m Msg) bool {
		return crashed && (from == leader || to == leader)
	}
	// Followers notice an outstanding client request via their own timers: we
	// simulate by having f+1 nodes vote directly (the protocol layer above
	// does this when forwarded requests stall). A single vote must NOT force
	// a view change — that would let one Byzantine node churn views — so two
	// votes (f+1) are needed before the rest join.
	ins[1].voteViewChange(1)
	r.advance(50 * time.Millisecond)
	if ins[2].View() != 0 {
		t.Fatal("a single view-change vote moved the view")
	}
	ins[2].voteViewChange(1)
	r.advance(time.Second)
	if !ins[1].IsLeader() {
		t.Fatalf("node 1 should lead view 1; view=%d", ins[1].View())
	}
	if err := ins[1].Propose([]byte("after-vc")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	for j := 1; j < 4; j++ {
		if len(*logs[j]) != 1 || !bytes.Equal((*logs[j])[0].payload, []byte("after-vc")) {
			t.Fatalf("node %d did not deliver in new view: %v", j, *logs[j])
		}
	}
}

func TestDeliveryOrderConsistencyAcrossNodes(t *testing.T) {
	r, ins, logs, _ := buildGroup(t, 7, nil)
	for i := 0; i < 10; i++ {
		if err := ins[0].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r.pump()
	ref := *logs[0]
	if len(ref) != 10 {
		t.Fatalf("delivered %d, want 10", len(ref))
	}
	for j := 1; j < 7; j++ {
		log := *logs[j]
		if len(log) != len(ref) {
			t.Fatalf("node %d delivered %d, want %d", j, len(log), len(ref))
		}
		for i := range ref {
			if !bytes.Equal(log[i].payload, ref[i].payload) {
				t.Fatalf("node %d diverges at %d", j, i)
			}
		}
	}
}

func TestCertificateFromDeliverProtectsPayload(t *testing.T) {
	r, ins, logs, reg := buildGroup(t, 4, nil)
	if err := ins[0].Propose([]byte("protected")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	cert := (*logs[1])[0].cert
	if cert.Digest != keys.Hash([]byte("protected")) {
		t.Fatal("certificate digest mismatch")
	}
	// Tampering with the digest invalidates the certificate.
	cert2 := *cert
	cert2.Digest = keys.Hash([]byte("tampered"))
	if err := reg.VerifyCertificate(&cert2); err == nil {
		t.Fatal("tampered certificate verified")
	}
}

func TestSkipPrepareViewChange(t *testing.T) {
	// The meta (skip-prepare) instance must also survive leader loss.
	r, ins, logs, _ := buildGroup(t, 4, func(id keys.NodeID, cfg *Config) {
		cfg.SkipPrepare = true
		cfg.ViewChangeTimeout = 100 * time.Millisecond
	})
	leader := keys.NodeID{Group: 0, Index: 0}
	crashed := false
	r.drop = func(from, to keys.NodeID, m Msg) bool {
		if crashed && (from == leader || to == leader) {
			return true
		}
		if _, ok := m.(*Commit); ok && !crashed {
			return true // strand the first proposal
		}
		return false
	}
	if err := ins[0].Propose([]byte("stranded-meta")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	crashed = true
	r.advance(time.Second)
	if ins[1].View() == 0 {
		t.Fatal("skip-prepare instance never changed view")
	}
	for j := 1; j < 4; j++ {
		if len(*logs[j]) != 1 || !bytes.Equal((*logs[j])[0].payload, []byte("stranded-meta")) {
			t.Fatalf("node %d: %v", j, *logs[j])
		}
	}
}

func TestViewChangeEscalation(t *testing.T) {
	// If the next leader is also dead, the view change must escalate past it.
	r, ins, logs, _ := buildGroup(t, 7, func(id keys.NodeID, cfg *Config) {
		cfg.ViewChangeTimeout = 100 * time.Millisecond
	})
	dead := map[keys.NodeID]bool{
		{Group: 0, Index: 0}: true,
		{Group: 0, Index: 1}: true, // leader of view 1 is dead too
	}
	r.drop = func(from, to keys.NodeID, m Msg) bool { return dead[from] || dead[to] }
	// f+1 = 3 live replicas suspect view 1; its leader is dead, so the
	// escalation timer must carry them to view 2.
	ins[2].voteViewChange(1)
	ins[3].voteViewChange(1)
	ins[4].voteViewChange(1)
	r.advance(3 * time.Second)
	if ins[2].View() < 2 {
		t.Fatalf("view stuck at %d, want >= 2", ins[2].View())
	}
	if !ins[2].IsLeader() {
		t.Fatal("node 2 should lead view 2")
	}
	if err := ins[2].Propose([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	r.pump()
	if len(*logs[3]) != 1 {
		t.Fatal("no delivery in escalated view")
	}
}

func TestStaleViewMessagesIgnored(t *testing.T) {
	r, ins, logs, _ := buildGroup(t, 4, func(id keys.NodeID, cfg *Config) {
		cfg.ViewChangeTimeout = 50 * time.Millisecond
	})
	// Move everyone to view 1.
	ins[1].voteViewChange(1)
	ins[2].voteViewChange(1)
	r.advance(time.Second)
	if ins[1].View() != 1 {
		t.Fatalf("view = %d", ins[1].View())
	}
	// A view-0 pre-prepare from the old leader must be ignored now.
	before := len(*logs[2])
	pp := &PrePrepare{View: 0, Slot: 99, Digest: keys.Hash([]byte("old")), Payload: []byte("old")}
	ins[2].Handle(keys.NodeID{Group: 0, Index: 0}, pp)
	r.pump()
	if len(*logs[2]) != before {
		t.Fatal("stale-view pre-prepare delivered")
	}
}

func TestDeliverSkipsNoOpPayload(t *testing.T) {
	// No-op gap fillers deliver with a nil payload.
	r, ins, logs, _ := buildGroup(t, 4, nil)
	if err := ins[0].Propose(nil); err != nil {
		t.Fatal(err)
	}
	r.pump()
	if len(*logs[1]) != 1 || (*logs[1])[0].payload != nil {
		t.Fatalf("no-op delivery wrong: %v", *logs[1])
	}
}

func TestEquivocatingLeaderFirstWinsLocally(t *testing.T) {
	// A Byzantine leader sending different payloads for the same slot cannot
	// make correct replicas deliver conflicting entries: at most one digest
	// can gather 2f+1 prepares.
	r, ins, logs, _ := buildGroup(t, 4, nil)
	// Split the group: node 1 sees payload A first, node 2 sees B first.
	seen := false
	r.drop = func(from, to keys.NodeID, m Msg) bool {
		if pp, ok := m.(*PrePrepare); ok && !seen && to.Index == 2 {
			bad := *pp
			other := []byte("B-payload")
			bad.Payload = other
			bad.Digest = keys.Hash(other)
			// Re-sign is impossible for the test (we lack the key here), so
			// node 2 will reject it — equivalent to never seeing A.
			r.queue = append(r.queue, queued{from, to, &bad})
			return true
		}
		return false
	}
	if err := ins[0].Propose([]byte("A-payload")); err != nil {
		t.Fatal(err)
	}
	seen = true
	r.pump()
	// Nodes 0,1,3 deliver A; node 2 delivers nothing (rejected forgery), and
	// crucially nobody delivers B.
	for j, log := range logs {
		for _, d := range *log {
			if !bytes.Equal(d.payload, []byte("A-payload")) {
				t.Fatalf("node %d delivered %q", j, d.payload)
			}
		}
	}
}

func BenchmarkThreePhaseCommit(b *testing.B) {
	pairs, reg, _ := keys.GenerateCluster([]int{4}, 11)
	members := make([]keys.NodeID, 4)
	for j := range members {
		members[j] = keys.NodeID{Group: 0, Index: j}
	}
	r := &router{instances: make(map[keys.NodeID]*Instance)}
	instances := make([]*Instance, 4)
	for j := 0; j < 4; j++ {
		cfg := Config{
			Self:     pairs[0][j],
			Members:  members,
			Registry: reg,
			Send:     r.send(members[j]),
			Deliver:  func(uint64, []byte, *keys.Certificate) {},
		}
		instances[j] = New(cfg)
		r.instances[members[j]] = instances[j]
	}
	payload := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := instances[0].Propose(payload); err != nil {
			b.Fatal(err)
		}
		r.pump()
	}
}
