// Package pbft implements the local intra-group consensus MassBFT and all
// competitor protocols use (§II-A "Local Replication"): Practical Byzantine
// Fault Tolerance with pre-prepare/prepare/commit phases, 2f+1 quorum
// certificates, and view changes to replace a faulty leader.
//
// The paper also uses a two-phase variant for the global accept phase that
// skips prepare "because nodes do not need to agree on the consensus input,
// as it has already been certified" (Ziziphus-style); Config.SkipPrepare
// selects it.
//
// An Instance is a single-group replica state machine. It is transport
// agnostic: outgoing messages go through Config.Send, timers through
// Config.After, and committed slots are handed to Config.Deliver in strict
// slot order together with their quorum Certificate.
package pbft

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"massbft/internal/keys"
)

// Phase labels for signed phase messages.
const (
	phasePrePrepare = iota
	phasePrepare
)

// Msg is the interface implemented by all PBFT wire messages.
type Msg interface {
	WireSize() int
	pbftMsg()
}

// PrePrepare is the leader's proposal for a slot in a view. An empty payload
// is a no-op proposal used to fill slot gaps after a view change; Deliver
// reports it with a nil payload and upper layers skip it.
type PrePrepare struct {
	View    uint64
	Slot    uint64
	Digest  keys.Digest
	Payload []byte
	Sig     keys.Signature
}

// Prepare is a replica's echo of the proposal digest.
type Prepare struct {
	View   uint64
	Slot   uint64
	Digest keys.Digest
	Sig    keys.Signature
}

// Commit carries the replica's certificate share for the digest. Shares sign
// the view-independent certificate message, so shares collected across a
// view change still assemble into one valid certificate.
type Commit struct {
	View   uint64
	Slot   uint64
	Digest keys.Digest
	Share  keys.Signature
}

// PreparedInfo describes one slot a replica prepared but has not committed.
type PreparedInfo struct {
	Slot    uint64
	Digest  keys.Digest
	Payload []byte
}

// ViewChange votes to replace the current leader. It reports every slot the
// sender prepared but has not yet committed so the new leader can re-propose
// them (classic PBFT's P set).
type ViewChange struct {
	NewView  uint64
	Prepared []PreparedInfo
	Sig      keys.Signature
}

// NewView announces the new leader's installed view together with
// re-proposals for all potentially-committed slots and no-op fillers for
// gaps.
type NewView struct {
	View        uint64
	Reproposals []*PrePrepare
	Sig         keys.Signature
}

func (*PrePrepare) pbftMsg() {}
func (*Prepare) pbftMsg()    {}
func (*Commit) pbftMsg()     {}
func (*ViewChange) pbftMsg() {}
func (*NewView) pbftMsg()    {}

const sigWire = ed25519.SignatureSize + 8 // signature + signer id

// WireSize returns the serialized size in bytes.
func (m *PrePrepare) WireSize() int { return 16 + 32 + len(m.Payload) + sigWire }

// WireSize returns the serialized size in bytes.
func (m *Prepare) WireSize() int { return 16 + 32 + sigWire }

// WireSize returns the serialized size in bytes.
func (m *Commit) WireSize() int { return 16 + 32 + sigWire }

// WireSize returns the serialized size in bytes.
func (m *ViewChange) WireSize() int {
	n := 8 + sigWire
	for _, p := range m.Prepared {
		n += 8 + 32 + len(p.Payload)
	}
	return n
}

// WireSize returns the serialized size in bytes.
func (m *NewView) WireSize() int {
	n := 8 + sigWire
	for _, pp := range m.Reproposals {
		n += pp.WireSize()
	}
	return n
}

// Config wires an Instance to its environment.
type Config struct {
	// Self is this replica's key pair; Self.ID.Group selects the group.
	Self *keys.KeyPair
	// Members lists the group's node IDs in index order.
	Members []keys.NodeID
	// Registry verifies member signatures.
	Registry *keys.Registry
	// Send transmits a message to one member (the transport models size).
	Send func(to keys.NodeID, m Msg)
	// Deliver is called exactly once per slot, in slot order, on every
	// correct replica, with the committed payload (nil for no-op slots) and
	// its quorum certificate.
	Deliver func(slot uint64, payload []byte, cert *keys.Certificate)
	// After schedules fn after d of virtual time; required when
	// ViewChangeTimeout is set.
	After func(d time.Duration, fn func())
	// ViewChangeTimeout is how long a replica waits for an outstanding
	// proposal to commit before voting to change views. Zero disables view
	// changes.
	ViewChangeTimeout time.Duration
	// SkipPrepare selects the two-phase variant used for the global accept
	// phase (§II-A): pre-prepare then commit.
	SkipPrepare bool
	// OnViewChange, when non-nil, is notified after a new view installs.
	OnViewChange func(view uint64)
}

type slotState struct {
	digest     keys.Digest
	payload    []byte
	prePrepare bool
	prepares   map[keys.NodeID]bool
	commits    map[keys.NodeID]keys.Signature
	committed  bool
	delivered  bool
}

// Instance is one replica's PBFT state machine.
type Instance struct {
	cfg   Config
	n, f  int
	group int

	view     uint64
	nextSlot uint64 // next unassigned slot (leader) / highest seen+1
	execSlot uint64 // next slot to deliver
	slots    map[uint64]*slotState
	vcVotes  map[uint64]map[keys.NodeID]*ViewChange
	timerSeq uint64 // invalidates stale progress timers
	vcTarget uint64 // highest view we have voted for
}

// New creates a PBFT replica instance.
func New(cfg Config) *Instance {
	n := len(cfg.Members)
	return &Instance{
		cfg:     cfg,
		n:       n,
		f:       (n - 1) / 3,
		group:   cfg.Self.ID.Group,
		slots:   make(map[uint64]*slotState),
		vcVotes: make(map[uint64]map[keys.NodeID]*ViewChange),
	}
}

// Quorum returns the 2f+1 threshold.
func (in *Instance) Quorum() int { return 2*in.f + 1 }

// View returns the current view number.
func (in *Instance) View() uint64 { return in.view }

// Leader returns the leader of the given view.
func (in *Instance) Leader(view uint64) keys.NodeID {
	return in.cfg.Members[int(view)%in.n]
}

// IsLeader reports whether this replica leads the current view.
func (in *Instance) IsLeader() bool { return in.Leader(in.view) == in.cfg.Self.ID }

// Propose starts consensus on payload. Only the current leader may call it;
// other callers get an error so the protocol layer can forward the request.
func (in *Instance) Propose(payload []byte) error {
	if !in.IsLeader() {
		return fmt.Errorf("pbft: %v is not the leader of view %d", in.cfg.Self.ID, in.view)
	}
	slot := in.nextSlot
	in.nextSlot++
	in.proposeAt(slot, payload)
	return nil
}

func (in *Instance) proposeAt(slot uint64, payload []byte) {
	d := keys.Hash(payload)
	pp := &PrePrepare{
		View:    in.view,
		Slot:    slot,
		Digest:  d,
		Payload: payload,
		Sig:     in.sign(phaseMsg(phasePrePrepare, in.view, slot, d)),
	}
	in.broadcast(pp)
	in.onPrePrepare(in.cfg.Self.ID, pp)
}

func (in *Instance) sign(msg []byte) keys.Signature {
	return keys.Signature{Signer: in.cfg.Self.ID, Sig: in.cfg.Self.Sign(msg)}
}

func (in *Instance) verify(sig keys.Signature, msg []byte) bool {
	return in.cfg.Registry.Verify(sig.Signer, msg, sig.Sig)
}

// phaseMsg is the canonical byte string signed for each phase message.
func phaseMsg(phase int, view, slot uint64, d keys.Digest) []byte {
	buf := make([]byte, 0, 1+16+len(d))
	buf = append(buf, byte(phase))
	buf = appendUint64(buf, view)
	buf = appendUint64(buf, slot)
	buf = append(buf, d[:]...)
	return buf
}

func appendUint64(b []byte, v uint64) []byte {
	for i := 7; i >= 0; i-- {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

func (in *Instance) broadcast(m Msg) {
	for _, id := range in.cfg.Members {
		if id != in.cfg.Self.ID {
			in.cfg.Send(id, m)
		}
	}
}

func (in *Instance) slot(s uint64) *slotState {
	st, ok := in.slots[s]
	if !ok {
		st = &slotState{
			prepares: make(map[keys.NodeID]bool),
			commits:  make(map[keys.NodeID]keys.Signature),
		}
		in.slots[s] = st
	}
	return st
}

// Handle processes a message from another replica. from must be the verified
// transport-level sender; signatures inside the message are checked against
// the registry regardless.
func (in *Instance) Handle(from keys.NodeID, m Msg) {
	switch msg := m.(type) {
	case *PrePrepare:
		in.onPrePrepare(from, msg)
	case *Prepare:
		in.onPrepare(msg)
	case *Commit:
		in.onCommit(msg)
	case *ViewChange:
		in.onViewChange(msg)
	case *NewView:
		in.onNewView(msg)
	}
}

func (in *Instance) onPrePrepare(from keys.NodeID, pp *PrePrepare) {
	if pp.View != in.view {
		return
	}
	if from != in.Leader(pp.View) && from != in.cfg.Self.ID {
		return // only the leader may pre-prepare
	}
	if pp.Sig.Signer != in.Leader(pp.View) ||
		!in.verify(pp.Sig, phaseMsg(phasePrePrepare, pp.View, pp.Slot, pp.Digest)) {
		return
	}
	if keys.Hash(pp.Payload) != pp.Digest {
		return // payload does not match digest
	}
	st := in.slot(pp.Slot)
	if st.prePrepare {
		return // duplicate (first proposal for the slot wins in this view)
	}
	st.prePrepare = true
	st.digest = pp.Digest
	st.payload = pp.Payload
	if in.nextSlot <= pp.Slot {
		in.nextSlot = pp.Slot + 1
	}
	in.armProgressTimer(pp.Slot)

	if in.cfg.SkipPrepare {
		in.sendCommit(pp.Slot, pp.Digest, st)
		return
	}
	p := &Prepare{
		View: pp.View, Slot: pp.Slot, Digest: pp.Digest,
		Sig: in.sign(phaseMsg(phasePrepare, pp.View, pp.Slot, pp.Digest)),
	}
	in.broadcast(p)
	in.onPrepare(p) // count own prepare
}

func (in *Instance) onPrepare(p *Prepare) {
	if p.View != in.view || in.cfg.SkipPrepare {
		return
	}
	if !in.verify(p.Sig, phaseMsg(phasePrepare, p.View, p.Slot, p.Digest)) {
		return
	}
	st := in.slot(p.Slot)
	if st.prePrepare && st.digest != p.Digest {
		return
	}
	st.prepares[p.Sig.Signer] = true
	in.maybeCommitPhase(p.Slot, st)
}

func (in *Instance) maybeCommitPhase(slot uint64, st *slotState) {
	// Prepared: pre-prepare plus 2f+1 matching prepares (incl. our own).
	if !st.prePrepare || len(st.prepares) < in.Quorum() || st.committed {
		return
	}
	if _, already := st.commits[in.cfg.Self.ID]; already {
		return
	}
	in.sendCommit(slot, st.digest, st)
}

func (in *Instance) sendCommit(slot uint64, d keys.Digest, st *slotState) {
	share := keys.SignCertificate(in.cfg.Self, in.group, d)
	c := &Commit{View: in.view, Slot: slot, Digest: d, Share: share}
	in.broadcast(c)
	in.onCommit(c)
}

func (in *Instance) onCommit(c *Commit) {
	if c.View != in.view {
		return
	}
	st := in.slot(c.Slot)
	if st.prePrepare && st.digest != c.Digest {
		return
	}
	// Commit shares double as certificate signatures; verify as such.
	probe := &keys.Certificate{Group: in.group, Digest: c.Digest, Sigs: []keys.Signature{c.Share}}
	if err := in.cfg.Registry.VerifyCertificate(probe); err != nil &&
		err != keys.ErrCertTooFewSigs {
		return
	}
	st.commits[c.Share.Signer] = c.Share
	if !st.committed && st.prePrepare && len(st.commits) >= in.Quorum() {
		st.committed = true
		in.timerSeq++ // progress: cancel pending view-change timers
		in.deliverReady()
	}
}

func (in *Instance) deliverReady() {
	for {
		st, ok := in.slots[in.execSlot]
		if !ok || !st.committed || st.delivered {
			return
		}
		st.delivered = true
		cert := &keys.Certificate{Group: in.group, Digest: st.digest}
		for _, sig := range st.commits {
			cert.Sigs = append(cert.Sigs, sig)
		}
		cert.SortSigs()
		payload := st.payload
		if len(payload) == 0 {
			payload = nil // no-op filler slot
		}
		in.cfg.Deliver(in.execSlot, payload, cert)
		in.execSlot++
	}
}

// --- View change ---

func (in *Instance) armProgressTimer(slot uint64) {
	if in.cfg.ViewChangeTimeout <= 0 || in.cfg.After == nil {
		return
	}
	seq := in.timerSeq
	in.cfg.After(in.cfg.ViewChangeTimeout, func() {
		if in.timerSeq != seq {
			return // progress was made since
		}
		if st := in.slots[slot]; st != nil && st.committed {
			return
		}
		in.voteViewChange(in.view + 1)
	})
}

func (in *Instance) voteViewChange(newView uint64) {
	if newView <= in.view || newView <= in.vcTarget {
		return
	}
	in.vcTarget = newView
	vc := &ViewChange{NewView: newView}
	// Report every prepared-but-uncommitted slot (classic PBFT P set).
	for s := in.execSlot; s < in.nextSlot; s++ {
		st := in.slots[s]
		if st == nil || st.committed || !st.prePrepare {
			continue
		}
		if in.cfg.SkipPrepare || len(st.prepares) >= in.Quorum() {
			vc.Prepared = append(vc.Prepared, PreparedInfo{Slot: s, Digest: st.digest, Payload: st.payload})
		}
	}
	vc.Sig = in.sign(viewChangeMsg(vc))
	in.broadcast(vc)
	in.onViewChange(vc)
	// Escalate if this view change does not complete either.
	if in.cfg.After != nil && in.cfg.ViewChangeTimeout > 0 {
		seq := in.timerSeq
		in.cfg.After(2*in.cfg.ViewChangeTimeout, func() {
			if in.timerSeq == seq && in.view < newView {
				in.voteViewChange(newView + 1)
			}
		})
	}
}

func viewChangeMsg(vc *ViewChange) []byte {
	buf := []byte{0x10}
	buf = appendUint64(buf, vc.NewView)
	for _, p := range vc.Prepared {
		buf = appendUint64(buf, p.Slot)
		buf = append(buf, p.Digest[:]...)
	}
	return buf
}

func (in *Instance) onViewChange(vc *ViewChange) {
	if vc.NewView <= in.view {
		return
	}
	if !in.verify(vc.Sig, viewChangeMsg(vc)) {
		return
	}
	votes := in.vcVotes[vc.NewView]
	if votes == nil {
		votes = make(map[keys.NodeID]*ViewChange)
		in.vcVotes[vc.NewView] = votes
	}
	votes[vc.Sig.Signer] = vc
	// Join the view change once f+1 replicas vote: at least one is correct.
	if len(votes) == in.f+1 {
		in.voteViewChange(vc.NewView)
	}
	if len(votes) >= in.Quorum() && in.Leader(vc.NewView) == in.cfg.Self.ID {
		in.installNewView(vc.NewView, votes)
	}
}

func (in *Instance) installNewView(view uint64, votes map[keys.NodeID]*ViewChange) {
	if view <= in.view {
		return
	}
	// Union of prepared slots across votes; highest-digest-per-slot is
	// unambiguous because a slot can only prepare one digest per view and
	// conflicting views cannot both prepare (quorum intersection).
	prepared := make(map[uint64]PreparedInfo)
	maxSlot := in.execSlot
	for _, vc := range votes {
		for _, p := range vc.Prepared {
			prepared[p.Slot] = p
			if p.Slot+1 > maxSlot {
				maxSlot = p.Slot + 1
			}
		}
	}
	nv := &NewView{View: view, Sig: in.sign(newViewMsg(view))}
	for s := in.execSlot; s < maxSlot; s++ {
		var payload []byte
		var d keys.Digest
		if p, ok := prepared[s]; ok {
			payload, d = p.Payload, p.Digest
		} else {
			payload, d = nil, keys.Hash(nil) // no-op filler for gap slots
		}
		pp := &PrePrepare{
			View: view, Slot: s, Digest: d, Payload: payload,
			Sig: in.sign(phaseMsg(phasePrePrepare, view, s, d)),
		}
		nv.Reproposals = append(nv.Reproposals, pp)
	}
	in.enterView(view)
	in.broadcast(nv)
	for _, pp := range nv.Reproposals {
		in.onPrePrepare(in.cfg.Self.ID, pp)
	}
}

func newViewMsg(view uint64) []byte {
	return appendUint64([]byte{0x11}, view)
}

func (in *Instance) onNewView(nv *NewView) {
	if nv.View <= in.view {
		return
	}
	if nv.Sig.Signer != in.Leader(nv.View) || !in.verify(nv.Sig, newViewMsg(nv.View)) {
		return
	}
	in.enterView(nv.View)
	for _, pp := range nv.Reproposals {
		in.onPrePrepare(in.Leader(nv.View), pp)
	}
}

func (in *Instance) enterView(view uint64) {
	in.view = view
	in.timerSeq++
	// Uncommitted slot state from the old view is invalid in the new view.
	for s, st := range in.slots {
		if !st.committed {
			delete(in.slots, s)
		}
	}
	in.nextSlot = in.execSlot
	for s, st := range in.slots {
		if st.committed && s+1 > in.nextSlot {
			in.nextSlot = s + 1
		}
	}
	delete(in.vcVotes, view)
	if in.cfg.OnViewChange != nil {
		in.cfg.OnViewChange(view)
	}
}

// SuspectLeader votes to replace the current leader (view+1). Protocol
// layers call it when they observe leader silence that the instance's own
// progress timers cannot see (e.g. the leader stops proposing entirely).
// The view changes only if f+1 replicas concur.
func (in *Instance) SuspectLeader() {
	in.voteViewChange(in.view + 1)
}
