// Package pbft implements the local intra-group consensus MassBFT and all
// competitor protocols use (§II-A "Local Replication"): Practical Byzantine
// Fault Tolerance with pre-prepare/prepare/commit phases, 2f+1 quorum
// certificates, and view changes to replace a faulty leader.
//
// The paper also uses a two-phase variant for the global accept phase that
// skips prepare "because nodes do not need to agree on the consensus input,
// as it has already been certified" (Ziziphus-style); Config.SkipPrepare
// selects it.
//
// An Instance is a single-group replica state machine. It is transport
// agnostic: outgoing messages go through Config.Send, timers through
// Config.After, and committed slots are handed to Config.Deliver in strict
// slot order together with their quorum Certificate.
package pbft

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"massbft/internal/keys"
)

// Phase labels for signed phase messages.
const (
	phasePrePrepare = iota
	phasePrepare
)

// Msg is the interface implemented by all PBFT wire messages.
type Msg interface {
	WireSize() int
	pbftMsg()
}

// PrePrepare is the leader's proposal for a slot in a view. An empty payload
// is a no-op proposal used to fill slot gaps after a view change; Deliver
// reports it with a nil payload and upper layers skip it.
type PrePrepare struct {
	View    uint64
	Slot    uint64
	Digest  keys.Digest
	Payload []byte
	Sig     keys.Signature
}

// Prepare is a replica's echo of the proposal digest.
type Prepare struct {
	View   uint64
	Slot   uint64
	Digest keys.Digest
	Sig    keys.Signature
}

// Commit carries the replica's certificate share for the digest. Shares sign
// the view-independent certificate message, so shares collected across a
// view change still assemble into one valid certificate.
type Commit struct {
	View   uint64
	Slot   uint64
	Digest keys.Digest
	Share  keys.Signature
}

// PreparedInfo describes one slot a replica prepared but has not committed.
type PreparedInfo struct {
	Slot    uint64
	Digest  keys.Digest
	Payload []byte
}

// ViewChange votes to replace the current leader. It reports every slot the
// sender prepared but has not yet committed so the new leader can re-propose
// them (classic PBFT's P set).
type ViewChange struct {
	NewView  uint64
	Prepared []PreparedInfo
	Sig      keys.Signature
}

// NewView announces the new leader's installed view together with
// re-proposals for all potentially-committed slots and no-op fillers for
// gaps.
type NewView struct {
	View        uint64
	Reproposals []*PrePrepare
	Sig         keys.Signature
}

// SlotRequest asks a peer for certified slots the sender missed. Message loss
// has no retransmission in the three normal phases, so a replica that missed
// votes for a slot (or the NewView announcement itself) would otherwise stall
// its delivery cursor forever while the rest of the group moves on.
type SlotRequest struct {
	From uint64
}

// CommittedSlot is one delivered slot in a SlotReply: payload plus the quorum
// certificate that proves it, so the receiver trusts content, not the peer.
type CommittedSlot struct {
	Slot    uint64
	Payload []byte
	Cert    *keys.Certificate
}

// SlotReply carries missed certified slots in order, plus the latest NewView
// announcement so a replica stranded in an old view can rejoin the current one
// through the normal (signature-checked) path.
type SlotReply struct {
	NV    *NewView
	Slots []CommittedSlot
}

func (*PrePrepare) pbftMsg()  {}
func (*Prepare) pbftMsg()     {}
func (*Commit) pbftMsg()      {}
func (*ViewChange) pbftMsg()  {}
func (*NewView) pbftMsg()     {}
func (*SlotRequest) pbftMsg() {}
func (*SlotReply) pbftMsg()   {}

const sigWire = ed25519.SignatureSize + 8 // signature + signer id

// WireSize returns the serialized size in bytes.
func (m *PrePrepare) WireSize() int { return 16 + 32 + len(m.Payload) + sigWire }

// WireSize returns the serialized size in bytes.
func (m *Prepare) WireSize() int { return 16 + 32 + sigWire }

// WireSize returns the serialized size in bytes.
func (m *Commit) WireSize() int { return 16 + 32 + sigWire }

// WireSize returns the serialized size in bytes.
func (m *ViewChange) WireSize() int {
	n := 8 + sigWire
	for _, p := range m.Prepared {
		n += 8 + 32 + len(p.Payload)
	}
	return n
}

// WireSize returns the serialized size in bytes.
func (m *NewView) WireSize() int {
	n := 8 + sigWire
	for _, pp := range m.Reproposals {
		n += pp.WireSize()
	}
	return n
}

// WireSize returns the serialized size in bytes.
func (m *SlotRequest) WireSize() int { return 8 }

// WireSize returns the serialized size in bytes.
func (m *SlotReply) WireSize() int {
	n := 1
	if m.NV != nil {
		n += m.NV.WireSize()
	}
	for _, s := range m.Slots {
		n += 8 + len(s.Payload)
		if s.Cert != nil {
			n += s.Cert.Size()
		}
	}
	return n
}

// Config wires an Instance to its environment.
type Config struct {
	// Self is this replica's key pair; Self.ID.Group selects the group.
	Self *keys.KeyPair
	// Members lists the group's node IDs in index order.
	Members []keys.NodeID
	// Registry verifies member signatures.
	Registry *keys.Registry
	// Send transmits a message to one member (the transport models size).
	Send func(to keys.NodeID, m Msg)
	// Deliver is called exactly once per slot, in slot order, on every
	// correct replica, with the committed payload (nil for no-op slots) and
	// its quorum certificate.
	Deliver func(slot uint64, payload []byte, cert *keys.Certificate)
	// After schedules fn after d of virtual time; required when
	// ViewChangeTimeout is set.
	After func(d time.Duration, fn func())
	// ViewChangeTimeout is how long a replica waits for an outstanding
	// proposal to commit before voting to change views. Zero disables view
	// changes.
	ViewChangeTimeout time.Duration
	// SkipPrepare selects the two-phase variant used for the global accept
	// phase (§II-A): pre-prepare then commit.
	SkipPrepare bool
	// Validate, when non-nil, vets a non-empty proposal payload before this
	// replica accepts the pre-prepare and votes on it. Returning false drops
	// the proposal — the slot stalls and the view-change timeout removes the
	// leader — so a Byzantine leader cannot get application-invalid content
	// certified past 2f+1 honest validators. Nil payloads (view-change no-op
	// filler) bypass it. Runs on the Handle thread.
	Validate func(payload []byte) bool
	// OnViewChange, when non-nil, is notified after a new view installs.
	OnViewChange func(view uint64)
	// Trace, when non-nil, observes slot phase transitions on this replica:
	// phase is "pre-prepare" (proposal accepted), "prepared" (commit share
	// sent), or "committed" (quorum reached, about to deliver). Purely
	// observational — the hook must not feed back into the protocol.
	Trace func(slot uint64, phase string, payload []byte)
}

type slotState struct {
	digest     keys.Digest
	payload    []byte
	prePrepare bool
	prepares   map[keys.NodeID]bool
	commits    map[keys.NodeID]keys.Signature
	committed  bool
	delivered  bool
}

// Instance is one replica's PBFT state machine.
type Instance struct {
	cfg   Config
	n, f  int
	group int

	view     uint64
	nextSlot uint64 // next unassigned slot (leader) / highest seen+1
	execSlot uint64 // next slot to deliver
	slots    map[uint64]*slotState
	vcVotes  map[uint64]map[keys.NodeID]*ViewChange
	timerSeq uint64      // invalidates stale progress timers
	vcTarget uint64      // highest view we have voted for
	lastVC   *ViewChange // our vote for vcTarget, kept for re-broadcast

	// Catch-up state: delivered slots retained for serving SlotRequests, the
	// latest NewView (so stranded replicas can rejoin the view), a hint that
	// higher-view traffic was seen, and the rotating request counter.
	delivered       map[uint64]CommittedSlot
	lastNewView     *NewView
	viewHint        uint64
	catchupAttempts int
}

// New creates a PBFT replica instance.
func New(cfg Config) *Instance {
	n := len(cfg.Members)
	return &Instance{
		cfg:       cfg,
		n:         n,
		f:         (n - 1) / 3,
		group:     cfg.Self.ID.Group,
		slots:     make(map[uint64]*slotState),
		vcVotes:   make(map[uint64]map[keys.NodeID]*ViewChange),
		delivered: make(map[uint64]CommittedSlot),
	}
}

// Quorum returns the 2f+1 threshold.
func (in *Instance) Quorum() int { return 2*in.f + 1 }

// View returns the current view number.
func (in *Instance) View() uint64 { return in.view }

// Leader returns the leader of the given view.
func (in *Instance) Leader(view uint64) keys.NodeID {
	return in.cfg.Members[int(view)%in.n]
}

// IsLeader reports whether this replica leads the current view.
func (in *Instance) IsLeader() bool { return in.Leader(in.view) == in.cfg.Self.ID }

// Propose starts consensus on payload. Only the current leader may call it;
// other callers get an error so the protocol layer can forward the request.
func (in *Instance) Propose(payload []byte) error {
	if !in.IsLeader() {
		return fmt.Errorf("pbft: %v is not the leader of view %d", in.cfg.Self.ID, in.view)
	}
	slot := in.nextSlot
	in.nextSlot++
	in.proposeAt(slot, payload)
	return nil
}

func (in *Instance) proposeAt(slot uint64, payload []byte) {
	d := keys.Hash(payload)
	pp := &PrePrepare{
		View:    in.view,
		Slot:    slot,
		Digest:  d,
		Payload: payload,
		Sig:     in.sign(phaseMsg(phasePrePrepare, in.view, slot, d)),
	}
	in.broadcast(pp)
	in.onPrePrepare(in.cfg.Self.ID, pp)
}

func (in *Instance) sign(msg []byte) keys.Signature {
	return keys.Signature{Signer: in.cfg.Self.ID, Sig: in.cfg.Self.Sign(msg)}
}

func (in *Instance) verify(sig keys.Signature, msg []byte) bool {
	return in.cfg.Registry.Verify(sig.Signer, msg, sig.Sig)
}

// phaseMsg is the canonical byte string signed for each phase message.
func phaseMsg(phase int, view, slot uint64, d keys.Digest) []byte {
	buf := make([]byte, 0, 1+16+len(d))
	buf = append(buf, byte(phase))
	buf = appendUint64(buf, view)
	buf = appendUint64(buf, slot)
	buf = append(buf, d[:]...)
	return buf
}

func appendUint64(b []byte, v uint64) []byte {
	for i := 7; i >= 0; i-- {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

func (in *Instance) broadcast(m Msg) {
	for _, id := range in.cfg.Members {
		if id != in.cfg.Self.ID {
			in.cfg.Send(id, m)
		}
	}
}

func (in *Instance) slot(s uint64) *slotState {
	st, ok := in.slots[s]
	if !ok {
		st = &slotState{
			prepares: make(map[keys.NodeID]bool),
			commits:  make(map[keys.NodeID]keys.Signature),
		}
		in.slots[s] = st
	}
	return st
}

// Handle processes a message from another replica. from must be the verified
// transport-level sender; signatures inside the message are checked against
// the registry regardless.
func (in *Instance) Handle(from keys.NodeID, m Msg) {
	switch msg := m.(type) {
	case *PrePrepare:
		in.noteView(msg.View)
		in.onPrePrepare(from, msg)
	case *Prepare:
		in.noteView(msg.View)
		in.onPrepare(msg)
	case *Commit:
		in.noteView(msg.View)
		in.onCommit(msg)
	case *ViewChange:
		in.onViewChange(msg)
	case *NewView:
		in.onNewView(msg)
	case *SlotRequest:
		in.onSlotRequest(from, msg)
	case *SlotReply:
		in.onSlotReply(msg)
	}
}

// noteView records the highest view seen in any phase message. The value is
// unverified and never changes protocol state — it only makes Behind() true,
// triggering a catch-up request whose reply is fully certificate-checked.
func (in *Instance) noteView(v uint64) {
	if v > in.viewHint {
		in.viewHint = v
	}
}

func (in *Instance) onPrePrepare(from keys.NodeID, pp *PrePrepare) {
	if pp.View != in.view || pp.Slot < in.execSlot {
		return // stale view, or a slot already delivered (state was GC'd)
	}
	if in.vcTarget > in.view {
		// Voted to leave this view: the view-change vote is a snapshot of our
		// prepared set, so acquiring NEW prepared/committed state afterwards
		// is unsafe — a slot could commit here that no vote reports, and the
		// new view would then certify a different payload at the same slot
		// (classic PBFT stops processing old-view phase messages after
		// sending VIEW-CHANGE for exactly this reason).
		return
	}
	if from != in.Leader(pp.View) && from != in.cfg.Self.ID {
		return // only the leader may pre-prepare
	}
	if pp.Sig.Signer != in.Leader(pp.View) ||
		!in.verify(pp.Sig, phaseMsg(phasePrePrepare, pp.View, pp.Slot, pp.Digest)) {
		return
	}
	if keys.Hash(pp.Payload) != pp.Digest {
		return // payload does not match digest
	}
	if len(pp.Payload) > 0 && in.cfg.Validate != nil && !in.cfg.Validate(pp.Payload) {
		return // application-invalid proposal: refuse to vote
	}
	st := in.slot(pp.Slot)
	if st.prePrepare {
		// Duplicate (first proposal for the slot wins in this view). If the
		// slot already committed here and a new view is re-proposing it, the
		// peers re-running consensus need our share — commit shares are
		// certificate signatures over (group, digest), valid across views.
		if st.committed && st.digest == pp.Digest {
			if share, ok := st.commits[in.cfg.Self.ID]; ok {
				in.broadcast(&Commit{View: in.view, Slot: pp.Slot, Digest: st.digest, Share: share})
			}
		}
		return
	}
	st.prePrepare = true
	st.digest = pp.Digest
	st.payload = pp.Payload
	if in.nextSlot <= pp.Slot {
		in.nextSlot = pp.Slot + 1
	}
	if in.cfg.Trace != nil {
		in.cfg.Trace(pp.Slot, "pre-prepare", pp.Payload)
	}
	in.armProgressTimer(pp.Slot)

	if in.cfg.SkipPrepare {
		in.sendCommit(pp.Slot, pp.Digest, st)
		return
	}
	p := &Prepare{
		View: pp.View, Slot: pp.Slot, Digest: pp.Digest,
		Sig: in.sign(phaseMsg(phasePrepare, pp.View, pp.Slot, pp.Digest)),
	}
	in.broadcast(p)
	in.onPrepare(p) // count own prepare
}

func (in *Instance) onPrepare(p *Prepare) {
	if p.View != in.view || p.Slot < in.execSlot || in.cfg.SkipPrepare {
		return
	}
	if in.vcTarget > in.view {
		return // voted to leave this view (see onPrePrepare)
	}
	if !in.verify(p.Sig, phaseMsg(phasePrepare, p.View, p.Slot, p.Digest)) {
		return
	}
	st := in.slot(p.Slot)
	if st.prePrepare && st.digest != p.Digest {
		return
	}
	st.prepares[p.Sig.Signer] = true
	in.maybeCommitPhase(p.Slot, st)
}

func (in *Instance) maybeCommitPhase(slot uint64, st *slotState) {
	// Prepared: pre-prepare plus 2f+1 matching prepares (incl. our own).
	if !st.prePrepare || len(st.prepares) < in.Quorum() || st.committed {
		return
	}
	if _, already := st.commits[in.cfg.Self.ID]; already {
		return
	}
	in.sendCommit(slot, st.digest, st)
}

func (in *Instance) sendCommit(slot uint64, d keys.Digest, st *slotState) {
	if in.cfg.Trace != nil {
		in.cfg.Trace(slot, "prepared", st.payload)
	}
	share := keys.SignCertificate(in.cfg.Self, in.group, d)
	c := &Commit{View: in.view, Slot: slot, Digest: d, Share: share}
	in.broadcast(c)
	in.onCommit(c)
}

func (in *Instance) onCommit(c *Commit) {
	if c.View != in.view || c.Slot < in.execSlot {
		return
	}
	if in.vcTarget > in.view {
		return // voted to leave this view (see onPrePrepare)
	}
	st := in.slot(c.Slot)
	if st.prePrepare && st.digest != c.Digest {
		return
	}
	// Commit shares double as certificate signatures; verify as such.
	probe := &keys.Certificate{Group: in.group, Digest: c.Digest, Sigs: []keys.Signature{c.Share}}
	if err := in.cfg.Registry.VerifyCertificate(probe); err != nil &&
		err != keys.ErrCertTooFewSigs {
		return
	}
	st.commits[c.Share.Signer] = c.Share
	if !st.committed && st.prePrepare && len(st.commits) >= in.Quorum() {
		st.committed = true
		in.timerSeq++ // progress: cancel pending view-change timers
		if in.cfg.Trace != nil {
			in.cfg.Trace(c.Slot, "committed", st.payload)
		}
		in.deliverReady()
	}
}

func (in *Instance) deliverReady() {
	for {
		st, ok := in.slots[in.execSlot]
		if !ok || !st.committed || st.delivered {
			return
		}
		st.delivered = true
		cert := &keys.Certificate{Group: in.group, Digest: st.digest}
		for _, sig := range st.commits {
			cert.Sigs = append(cert.Sigs, sig)
		}
		cert.SortSigs()
		payload := st.payload
		if len(payload) == 0 {
			payload = nil // no-op filler slot
		}
		in.cfg.Deliver(in.execSlot, payload, cert)
		in.logDelivered(CommittedSlot{Slot: in.execSlot, Payload: payload, Cert: cert})
		// Delivered slot state is never consulted again (the execSlot guards
		// drop late messages for it); free it so long runs stay bounded.
		delete(in.slots, in.execSlot)
		in.execSlot++
		in.catchupAttempts = 0
	}
}

// logDelivered retains a delivered slot for serving catch-up requests, bounded
// to catchupRetain slots; older gaps fall back to application-level rejoin.
func (in *Instance) logDelivered(cs CommittedSlot) {
	in.delivered[cs.Slot] = cs
	if cs.Slot >= catchupRetain {
		delete(in.delivered, cs.Slot-catchupRetain)
	}
}

const (
	// catchupRetain bounds the per-instance delivered-slot log.
	catchupRetain = 512
	// catchupBurst bounds one SlotReply; the requester asks again if still
	// behind.
	catchupBurst = 64
)

// Behind reports whether this replica appears to be missing deliveries:
// in-flight slots exist beyond the delivery cursor, or traffic from a higher
// view arrived (the NewView announcement may have been lost). Callers combine
// it with a stall timer — under normal pipelining both conditions occur
// transiently.
func (in *Instance) Behind() bool {
	return in.viewHint > in.view || in.nextSlot > in.execSlot
}

// Catchup sends one SlotRequest for the delivery cursor to a rotating group
// peer. The protocol layer calls it when the cursor stalls while Behind().
func (in *Instance) Catchup() {
	if in.n < 2 {
		return
	}
	peer := in.cfg.Members[(in.cfg.Self.ID.Index+1+in.catchupAttempts)%in.n]
	if peer == in.cfg.Self.ID {
		peer = in.cfg.Members[(peer.Index+1)%in.n]
	}
	in.catchupAttempts++
	in.cfg.Send(peer, &SlotRequest{From: in.execSlot})
}

// onSlotRequest serves delivered slots from the retained log, together with
// the latest NewView so a view-stranded replica can rejoin.
func (in *Instance) onSlotRequest(from keys.NodeID, m *SlotRequest) {
	if from == in.cfg.Self.ID {
		return
	}
	rep := &SlotReply{NV: in.lastNewView}
	for s := m.From; s < m.From+catchupBurst; s++ {
		cs, ok := in.delivered[s]
		if !ok {
			break
		}
		rep.Slots = append(rep.Slots, cs)
	}
	if rep.NV == nil && len(rep.Slots) == 0 {
		return
	}
	in.cfg.Send(from, rep)
}

// onSlotReply ingests certified slots at the delivery cursor. Nothing is
// trusted from the peer: each slot must carry a valid quorum certificate over
// its payload digest, and the NewView goes through the normal signature check.
func (in *Instance) onSlotReply(m *SlotReply) {
	if m.NV != nil {
		in.onNewView(m.NV)
	}
	progressed := false
	for _, cs := range m.Slots {
		if cs.Slot != in.execSlot {
			continue
		}
		payload := cs.Payload
		if len(payload) == 0 {
			payload = nil
		}
		if cs.Cert == nil || cs.Cert.Group != in.group ||
			cs.Cert.Digest != keys.Hash(payload) ||
			in.cfg.Registry.VerifyCertificate(cs.Cert) != nil {
			continue
		}
		delete(in.slots, cs.Slot)
		in.cfg.Deliver(cs.Slot, payload, cs.Cert)
		in.logDelivered(CommittedSlot{Slot: cs.Slot, Payload: payload, Cert: cs.Cert})
		in.execSlot++
		if in.nextSlot < in.execSlot {
			in.nextSlot = in.execSlot
		}
		progressed = true
	}
	if progressed {
		in.timerSeq++ // progress: cancel pending view-change timers
		in.catchupAttempts = 0
		in.deliverReady() // locally-committed later slots may now be contiguous
	}
}

// --- View change ---

func (in *Instance) armProgressTimer(slot uint64) {
	if in.cfg.ViewChangeTimeout <= 0 || in.cfg.After == nil {
		return
	}
	seq := in.timerSeq
	in.cfg.After(in.cfg.ViewChangeTimeout, func() {
		if in.timerSeq != seq {
			return // progress was made since
		}
		if st := in.slots[slot]; st != nil && st.committed {
			return
		}
		in.voteViewChange(in.view + 1)
	})
}

func (in *Instance) voteViewChange(newView uint64) {
	if newView <= in.view {
		return
	}
	if newView <= in.vcTarget {
		// Re-broadcast the stored vote: view-change messages have no other
		// retransmission path, and a group whose f+1 votes were all lost to
		// the network would otherwise stay wedged in the old view forever
		// (each replica's first and only vote already absorbed by the target
		// guard). Pure re-send — no self-processing, no new timers.
		if in.lastVC != nil && in.lastVC.NewView > in.view {
			in.broadcast(in.lastVC)
		}
		return
	}
	in.vcTarget = newView
	vc := &ViewChange{NewView: newView}
	// Report every prepared slot (classic PBFT P set). Committed-but-
	// undelivered slots are included too: they anchor the new view's maxSlot
	// so that a slot which never certified below them is re-proposed (as the
	// surviving prepared payload, or a no-op when no voter prepared it)
	// instead of being left as a permanent hole under the committed range.
	for s := in.execSlot; s < in.nextSlot; s++ {
		st := in.slots[s]
		if st == nil || !st.prePrepare {
			continue
		}
		if st.committed || in.cfg.SkipPrepare || len(st.prepares) >= in.Quorum() {
			vc.Prepared = append(vc.Prepared, PreparedInfo{Slot: s, Digest: st.digest, Payload: st.payload})
		}
	}
	vc.Sig = in.sign(viewChangeMsg(vc))
	in.lastVC = vc
	in.broadcast(vc)
	in.onViewChange(vc)
	// Escalate if this view change does not complete either.
	if in.cfg.After != nil && in.cfg.ViewChangeTimeout > 0 {
		seq := in.timerSeq
		in.cfg.After(2*in.cfg.ViewChangeTimeout, func() {
			if in.timerSeq == seq && in.view < newView {
				in.voteViewChange(newView + 1)
			}
		})
	}
}

func viewChangeMsg(vc *ViewChange) []byte {
	buf := []byte{0x10}
	buf = appendUint64(buf, vc.NewView)
	for _, p := range vc.Prepared {
		buf = appendUint64(buf, p.Slot)
		buf = append(buf, p.Digest[:]...)
	}
	return buf
}

func (in *Instance) onViewChange(vc *ViewChange) {
	if vc.NewView <= in.view {
		return
	}
	if !in.verify(vc.Sig, viewChangeMsg(vc)) {
		return
	}
	votes := in.vcVotes[vc.NewView]
	if votes == nil {
		votes = make(map[keys.NodeID]*ViewChange)
		in.vcVotes[vc.NewView] = votes
	}
	votes[vc.Sig.Signer] = vc
	// Join the view change once f+1 replicas vote: at least one is correct.
	if len(votes) == in.f+1 {
		in.voteViewChange(vc.NewView)
	}
	// Already suspicious ourselves: adopt a higher target so escalation
	// timers that diverged per replica (each bumping its own target while
	// votes were being lost) converge on the maximum, where a quorum can
	// actually form. Only replicas that independently timed out follow a
	// single vote up, so a Byzantine node can redirect but never initiate a
	// view change.
	if in.vcTarget > in.view && vc.NewView > in.vcTarget {
		in.voteViewChange(vc.NewView)
	}
	if len(votes) >= in.Quorum() && in.Leader(vc.NewView) == in.cfg.Self.ID {
		in.installNewView(vc.NewView, votes)
	}
}

func (in *Instance) installNewView(view uint64, votes map[keys.NodeID]*ViewChange) {
	if view <= in.view {
		return
	}
	// Union of prepared slots across votes; highest-digest-per-slot is
	// unambiguous because a slot can only prepare one digest per view and
	// conflicting views cannot both prepare (quorum intersection).
	prepared := make(map[uint64]PreparedInfo)
	maxSlot := in.execSlot
	for _, vc := range votes {
		for _, p := range vc.Prepared {
			prepared[p.Slot] = p
			if p.Slot+1 > maxSlot {
				maxSlot = p.Slot + 1
			}
		}
	}
	nv := &NewView{View: view, Sig: in.sign(newViewMsg(view))}
	for s := in.execSlot; s < maxSlot; s++ {
		var payload []byte
		var d keys.Digest
		if p, ok := prepared[s]; ok {
			payload, d = p.Payload, p.Digest
		} else {
			payload, d = nil, keys.Hash(nil) // no-op filler for gap slots
		}
		pp := &PrePrepare{
			View: view, Slot: s, Digest: d, Payload: payload,
			Sig: in.sign(phaseMsg(phasePrePrepare, view, s, d)),
		}
		nv.Reproposals = append(nv.Reproposals, pp)
	}
	in.enterView(view)
	in.lastNewView = nv
	in.broadcast(nv)
	for _, pp := range nv.Reproposals {
		in.onPrePrepare(in.cfg.Self.ID, pp)
	}
}

func newViewMsg(view uint64) []byte {
	return appendUint64([]byte{0x11}, view)
}

func (in *Instance) onNewView(nv *NewView) {
	if nv.View <= in.view {
		return
	}
	if nv.Sig.Signer != in.Leader(nv.View) || !in.verify(nv.Sig, newViewMsg(nv.View)) {
		return
	}
	in.enterView(nv.View)
	in.lastNewView = nv
	for _, pp := range nv.Reproposals {
		in.onPrePrepare(in.Leader(nv.View), pp)
	}
}

func (in *Instance) enterView(view uint64) {
	in.view = view
	in.timerSeq++
	// Uncommitted slot state from the old view is invalid in the new view.
	for s, st := range in.slots {
		if !st.committed {
			delete(in.slots, s)
		}
	}
	in.nextSlot = in.execSlot
	for s, st := range in.slots {
		if st.committed && s+1 > in.nextSlot {
			in.nextSlot = s + 1
		}
	}
	delete(in.vcVotes, view)
	if in.cfg.OnViewChange != nil {
		in.cfg.OnViewChange(view)
	}
}

// --- State transfer (checkpointed node rejoin) ---

// NextDeliverSlot returns the next slot this replica will deliver.
func (in *Instance) NextDeliverSlot() uint64 { return in.execSlot }

// ExportedSlot is the portable image of one undelivered slot: the proposal
// plus every prepare/commit vote the exporting replica has collected. Shares
// are the original signatures, so the importer's certificates stay valid.
type ExportedSlot struct {
	Slot      uint64
	Digest    keys.Digest
	Payload   []byte
	Prepares  []keys.NodeID
	Commits   []keys.Signature
	Committed bool
}

// WireSize returns the serialized size in bytes.
func (s *ExportedSlot) WireSize() int {
	return 8 + 32 + len(s.Payload) + 8*len(s.Prepares) + sigWire*len(s.Commits) + 1
}

// Export snapshots the instance for a state transfer: the current view, the
// next slot to deliver, and every in-flight slot with the votes collected so
// far. Slots below execSlot are already delivered and are represented by the
// application-level checkpoint instead.
func (in *Instance) Export() (view, execSlot uint64, inflight []ExportedSlot) {
	for s := in.execSlot; s < in.nextSlot; s++ {
		st := in.slots[s]
		if st == nil || !st.prePrepare {
			continue
		}
		ex := ExportedSlot{Slot: s, Digest: st.digest, Payload: st.payload, Committed: st.committed}
		for id := range st.prepares {
			ex.Prepares = append(ex.Prepares, id)
		}
		sortNodeIDs(ex.Prepares)
		for _, sig := range st.commits {
			ex.Commits = append(ex.Commits, sig)
		}
		sortSigs(ex.Commits)
		inflight = append(inflight, ex)
	}
	return in.view, in.execSlot, inflight
}

// Install resets the replica to an exported image: it jumps to the given view
// and delivery slot (the application state up to execSlot comes from the
// checkpoint) and seeds the in-flight slots, broadcasting this replica's own
// votes for the uncommitted ones so it resumes participating immediately.
// The image is trusted as-is (the checkpoint transfer trusts the serving
// peer; a production system would cross-check it against the certified
// ledger).
func (in *Instance) Install(view, execSlot uint64, inflight []ExportedSlot) {
	in.view = view
	in.execSlot = execSlot
	in.nextSlot = execSlot
	in.slots = make(map[uint64]*slotState)
	in.vcVotes = make(map[uint64]map[keys.NodeID]*ViewChange)
	in.vcTarget = view
	in.lastVC = nil
	in.timerSeq++
	in.delivered = make(map[uint64]CommittedSlot)
	in.viewHint = view
	in.catchupAttempts = 0
	for _, ex := range inflight {
		if ex.Slot < execSlot {
			continue
		}
		st := in.slot(ex.Slot)
		st.prePrepare = true
		st.digest = ex.Digest
		st.payload = ex.Payload
		for _, id := range ex.Prepares {
			st.prepares[id] = true
		}
		for _, sig := range ex.Commits {
			st.commits[sig.Signer] = sig
		}
		st.committed = ex.Committed
		if ex.Slot+1 > in.nextSlot {
			in.nextSlot = ex.Slot + 1
		}
		if st.committed {
			continue
		}
		in.armProgressTimer(ex.Slot)
		// Re-join the vote: peers that already voted will not resend, but our
		// own share may complete the quorum (their shares were exported).
		if in.cfg.SkipPrepare {
			if _, done := st.commits[in.cfg.Self.ID]; !done {
				in.sendCommit(ex.Slot, ex.Digest, st)
			}
		} else {
			p := &Prepare{
				View: in.view, Slot: ex.Slot, Digest: ex.Digest,
				Sig: in.sign(phaseMsg(phasePrepare, in.view, ex.Slot, ex.Digest)),
			}
			in.broadcast(p)
			in.onPrepare(p)
		}
	}
	in.deliverReady()
}

func sortNodeIDs(ids []keys.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func sortSigs(sigs []keys.Signature) {
	for i := 1; i < len(sigs); i++ {
		for j := i; j > 0 && less(sigs[j].Signer, sigs[j-1].Signer); j-- {
			sigs[j], sigs[j-1] = sigs[j-1], sigs[j]
		}
	}
}

func less(a, b keys.NodeID) bool {
	if a.Group != b.Group {
		return a.Group < b.Group
	}
	return a.Index < b.Index
}

// SuspectLeader votes to replace the current leader (view+1). Protocol
// layers call it when they observe leader silence that the instance's own
// progress timers cannot see (e.g. the leader stops proposing entirely).
// The view changes only if f+1 replicas concur.
func (in *Instance) SuspectLeader() {
	in.voteViewChange(in.view + 1)
}
