package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"massbft/internal/keys"
	"massbft/internal/types"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(Span{Stage: StagePropose}) // must not panic
	if r.Spans() != nil || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder returned non-zero state")
	}
}

func TestRecorderCapCountsDrops(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < maxSpans+10; i++ {
		r.Record(Span{Stage: StageExecute, Start: time.Duration(i)})
	}
	if r.Len() != maxSpans {
		t.Fatalf("Len = %d, want %d", r.Len(), maxSpans)
	}
	if r.Dropped() != 10 {
		t.Fatalf("Dropped = %d, want 10", r.Dropped())
	}
}

// goldenSpans is a small deterministic lifecycle used by both the golden-file
// and the round-trip tests.
func goldenSpans() []Span {
	origin := keys.NodeID{Group: 0, Index: 0}
	obs := keys.NodeID{Group: 1, Index: 0}
	e := types.EntryID{GID: 0, Seq: 1}
	return []Span{
		{Entry: e, Stage: StagePropose, Node: origin, Start: ms(10), End: ms(10)},
		{Entry: e, Stage: StageLocalConsensus, Node: origin, Start: ms(10), End: ms(14)},
		{Entry: e, Stage: StageEncode, Node: origin, Start: ms(14), End: ms(15), Bytes: 4096},
		{Entry: e, Stage: StageWANChunk, Node: obs, Start: ms(15), End: ms(40), Bytes: 512,
			Wait: ms(3), Backlog: ms(5)},
		{Entry: e, Stage: StageRebuild, Node: obs, Start: ms(41), End: ms(42), Bytes: 4096},
		{Entry: e, Stage: StageGlobalReplication, Node: obs, Start: ms(10), End: ms(42)},
		{Entry: e, Stage: StageOrderingWait, Node: obs, Start: ms(42), End: ms(60)},
		{Entry: e, Stage: StageExecute, Node: obs, Start: ms(60), End: ms(61)},
	}
}

// TestWriteChromeGolden pins the exact export format: a change to the Chrome
// JSON layout must be deliberate (regenerate with -update).
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenSpans(), []int{1, 1}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome export drifted from golden file\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	spans := goldenSpans()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans, []int{1, 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(spans))
	}
	// ReadChrome sorts by start; build a lookup by (stage, start) instead of
	// relying on order.
	byKey := make(map[string]Span)
	for _, s := range got {
		byKey[s.Stage+s.Start.String()] = s
	}
	for _, want := range spans {
		s, ok := byKey[want.Stage+want.Start.String()]
		if !ok {
			t.Fatalf("span %s@%v missing after round trip", want.Stage, want.Start)
		}
		if s.Entry != want.Entry || s.Node != want.Node || s.Bytes != want.Bytes ||
			s.Wait != want.Wait || s.Backlog != want.Backlog {
			t.Fatalf("round trip mutated span: got %+v want %+v", s, want)
		}
		end := want.End
		if end == want.Start {
			end += time.Nanosecond // instant spans export with a visibility epsilon
		}
		if s.End < want.End || s.End > end+time.Microsecond {
			t.Fatalf("round trip end %v, want ~%v", s.End, want.End)
		}
	}
}

func TestAnalyzePartitionSumsToE2E(t *testing.T) {
	obs := keys.NodeID{Group: 1, Index: 0}
	rep := Analyze(goldenSpans(), obs)
	if len(rep.Entries) != 1 {
		t.Fatalf("analyzed %d entries, want 1", len(rep.Entries))
	}
	p := rep.Entries[0]
	if p.Start != ms(10) || p.End != ms(60) {
		t.Fatalf("window [%v, %v], want [10ms, 60ms]", p.Start, p.End)
	}
	var sum time.Duration
	prev := p.Start
	for _, seg := range p.Segments {
		if seg.Start != prev {
			t.Fatalf("gap in partition: segment starts at %v, previous ended at %v", seg.Start, prev)
		}
		if seg.End <= seg.Start {
			t.Fatalf("empty or inverted segment %+v", seg)
		}
		prev = seg.End
		sum += seg.Dur()
	}
	if prev != p.End {
		t.Fatalf("partition ends at %v, window ends at %v", prev, p.End)
	}
	if sum != p.E2E() {
		t.Fatalf("segment sum %v != e2e %v", sum, p.E2E())
	}
	if rep.E2EAvg != p.E2E() {
		t.Fatalf("E2EAvg %v != single entry e2e %v", rep.E2EAvg, p.E2E())
	}
	// Stage averages must likewise sum to the e2e average.
	var stageSum time.Duration
	for _, s := range rep.Stages {
		stageSum += s.Avg
	}
	if stageSum != rep.E2EAvg {
		t.Fatalf("stage avgs sum to %v, want %v", stageSum, rep.E2EAvg)
	}
}

func TestAnalyzeInnermostAndWait(t *testing.T) {
	obs := keys.NodeID{Group: 0, Index: 0}
	e := types.EntryID{GID: 0, Seq: 1}
	spans := []Span{
		{Entry: e, Stage: StagePropose, Node: obs, Start: ms(0), End: ms(0)},
		// Outer span covers [0, 30); inner span [10, 20) must win there.
		{Entry: e, Stage: StageLocalConsensus, Node: obs, Start: ms(0), End: ms(30)},
		{Entry: e, Stage: StageEncode, Node: obs, Start: ms(10), End: ms(20)},
		// [30, 40) is uncovered → wait.
		{Entry: e, Stage: StageExecute, Node: obs, Start: ms(40), End: ms(41)},
	}
	rep := Analyze(spans, obs)
	if len(rep.Entries) != 1 {
		t.Fatalf("analyzed %d entries, want 1", len(rep.Entries))
	}
	segs := rep.Entries[0].Segments
	want := []Segment{
		{Stage: StageLocalConsensus, Start: ms(0), End: ms(10)},
		{Stage: StageEncode, Start: ms(10), End: ms(20)},
		{Stage: StageLocalConsensus, Start: ms(20), End: ms(30)},
		{Stage: StageWait, Start: ms(30), End: ms(40)},
	}
	if len(segs) != len(want) {
		t.Fatalf("segments = %+v, want %+v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
}

func TestAnalyzeSkipsUnexecutedAndForeignVantage(t *testing.T) {
	obs := keys.NodeID{Group: 1, Index: 0}
	other := keys.NodeID{Group: 2, Index: 0}
	e1 := types.EntryID{GID: 0, Seq: 1}
	e2 := types.EntryID{GID: 0, Seq: 2}
	spans := []Span{
		// e1 executed only on another node: not visible from obs's vantage.
		{Entry: e1, Stage: StagePropose, Node: keys.NodeID{}, Start: ms(0), End: ms(0)},
		{Entry: e1, Stage: StageExecute, Node: other, Start: ms(50), End: ms(51)},
		// e2 executed at obs.
		{Entry: e2, Stage: StagePropose, Node: keys.NodeID{}, Start: ms(5), End: ms(5)},
		{Entry: e2, Stage: StageExecute, Node: obs, Start: ms(45), End: ms(46)},
	}
	rep := Analyze(spans, obs)
	if len(rep.Entries) != 1 || rep.Entries[0].Entry != e2 {
		t.Fatalf("entries = %+v, want only e2", rep.Entries)
	}
	if rep.Dominant != StageWait {
		t.Fatalf("dominant = %q, want wait (no covering spans)", rep.Dominant)
	}
}
