package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one Chrome trace-event (the "JSON Object Format" consumed
// by chrome://tracing and Perfetto). Complete events use Ph "X" with Ts/Dur
// in microseconds; metadata events use Ph "M" to name processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level export document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChrome serializes spans as Chrome trace-event JSON: one process per
// group, one thread per node, one complete event per span (instant spans
// render with a minimal duration so they stay visible). groupSizes names the
// process/thread metadata; spans from unknown nodes are still emitted.
func WriteChrome(w io.Writer, spans []Span, groupSizes []int) error {
	events := make([]chromeEvent, 0, len(spans)+len(groupSizes)*8)
	for g, size := range groupSizes {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: g,
			Args: map[string]any{"name": fmt.Sprintf("group %d", g)},
		})
		for j := 0; j < size; j++ {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: g, Tid: j,
				Args: map[string]any{"name": fmt.Sprintf("node %d/%d", g, j)},
			})
		}
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Stage,
			Cat:  "entry",
			Ph:   "X",
			Ts:   usec(s.Start),
			Dur:  usec(s.End - s.Start),
			Pid:  s.Node.Group,
			Tid:  s.Node.Index,
			Args: map[string]any{"entry": s.Entry.String()},
		}
		if ev.Dur <= 0 {
			ev.Dur = 0.001 // keep instant spans visible in the viewer
		}
		if s.Bytes > 0 {
			ev.Args["bytes"] = s.Bytes
		}
		if s.Wait > 0 {
			ev.Args["queue_wait_us"] = usec(s.Wait)
		}
		if s.Backlog > 0 {
			ev.Args["backlog_us"] = usec(s.Backlog)
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ReadChrome parses a Chrome trace-event JSON document back into spans
// (metadata events are skipped; Entry/Wait/Backlog args are restored). Used
// by round-trip tests and the trace-validation tooling.
func ReadChrome(r io.Reader) ([]Span, error) {
	var doc chromeTrace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	var spans []Span
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		s := Span{
			Stage: ev.Name,
			Start: time.Duration(ev.Ts * float64(time.Microsecond)),
		}
		s.End = s.Start + time.Duration(ev.Dur*float64(time.Microsecond))
		s.Node.Group = ev.Pid
		s.Node.Index = ev.Tid
		if v, ok := ev.Args["entry"].(string); ok {
			if _, err := fmt.Sscanf(v, "e%d,%d", &s.Entry.GID, &s.Entry.Seq); err != nil {
				return nil, fmt.Errorf("trace: bad entry id %q", v)
			}
		}
		if v, ok := ev.Args["bytes"].(float64); ok {
			s.Bytes = int64(v)
		}
		if v, ok := ev.Args["queue_wait_us"].(float64); ok {
			s.Wait = time.Duration(v * float64(time.Microsecond))
		}
		if v, ok := ev.Args["backlog_us"].(float64); ok {
			s.Backlog = time.Duration(v * float64(time.Microsecond))
		}
		spans = append(spans, s)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return spans, nil
}
