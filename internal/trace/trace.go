// Package trace is the per-entry observability subsystem: a span recorder
// driven by the simulator's virtual clock that captures every lifecycle hop
// of every entry — local PBFT phases, erasure encode, per-chunk WAN transfer
// (with queue-wait and backlog samples probed from the token-bucket
// interfaces), chunk rebuild, replication-certificate assembly, ordering
// wait, and execution.
//
// The recorder is strictly passive: it never schedules events, charges CPU,
// or draws randomness, so a run with tracing enabled is bit-identical
// (committed prefix, state hashes, event schedule) to the same run with
// tracing disabled. All methods are safe on a nil *Recorder, which is the
// zero-overhead disabled fast path: call sites do a single nil receiver
// check and return.
//
// Spans export as Chrome trace-event JSON (export.go, loadable in Perfetto
// or chrome://tracing) and feed the critical-path analyzer (critpath.go)
// that reconstructs each entry's longest dependency chain.
package trace

import (
	"time"

	"massbft/internal/keys"
	"massbft/internal/types"
)

// Stage names. An entry's trace ID is its EntryID (assigned at proposal);
// every span carries it, so the whole pipeline of one entry is joinable.
const (
	// StagePropose marks the instant the entry was cut by its group leader
	// (Entry.Term); the zero point of the entry's end-to-end latency.
	StagePropose = "propose"
	// StagePrePrepare / StagePrepare / StageCommit are the local PBFT
	// three-phase rounds, recorded on the proposer only.
	StagePrePrepare = "pbft-preprepare"
	StagePrepare    = "pbft-prepare"
	StageCommit     = "pbft-commit"
	// StageLocalConsensus is propose → local certification (covers the PBFT
	// phases; the critical-path partition attributes the inner phases to
	// their own spans and the remainder here).
	StageLocalConsensus = "local-consensus"
	// StageEncode is the erasure-encode CPU cost on the proposer.
	StageEncode = "encode"
	// StageWANChunk is one erasure-coded chunk (or chunk batch) crossing the
	// WAN: uplink enqueue → downlink delivered, with Wait/Backlog sampled
	// from the sender's token-bucket uplink. Node is the receiver.
	StageWANChunk = "wan-chunk"
	// StageWANEntry is a complete entry copy crossing the WAN (one-way and
	// bijective replication).
	StageWANEntry = "wan-entry"
	// StageChunkCollect spans first chunk arrived → rebuild started on one
	// receiver (LAN chunk exchange and bucket fill).
	StageChunkCollect = "chunk-collect"
	// StageRebuild is the erasure-decode CPU cost on one receiver.
	StageRebuild = "rebuild"
	// StageGlobalReplication spans propose → content available on one
	// receiver node (the §IV replication pipeline end to end).
	StageGlobalReplication = "global-replication"
	// StageCertAssembly spans content → replication certificate (majority of
	// groups hold the entry), on nodes of the proposing group.
	StageCertAssembly = "cert-assembly"
	// StageOrderingWait spans content → deliverable by the ordering layer
	// (VTS stamp quorum / round turn) on one node.
	StageOrderingWait = "ordering-wait"
	// StageExecute is the execution CPU cost on one node.
	StageExecute = "execute"
	// StageWait labels critical-path segments not covered by any recorded
	// span (pure waiting, e.g. batch-timeout alignment); never recorded,
	// only synthesized by Analyze.
	StageWait = "wait"
)

// Span is one traced interval of one entry's lifecycle on one node. Times
// are virtual (simulation) time since run start.
type Span struct {
	Entry types.EntryID
	Stage string
	Node  keys.NodeID
	Start time.Duration
	End   time.Duration
	// Bytes is the wire size involved (chunk size, entry size), when known.
	Bytes int64
	// Wait is the queue wait the message saw at the sender's uplink (time
	// spent behind earlier traffic in the token-bucket serializer).
	Wait time.Duration
	// Backlog samples the sender's bulk-lane booked-ahead time at enqueue —
	// the queue-depth / bytes-in-flight diagnostic.
	Backlog time.Duration
}

// maxSpans bounds recorder memory on very long runs. Far above any normal
// run (a 10 s demo records ~10^5 spans); overflow is counted, never silent.
const maxSpans = 1 << 20

// Recorder accumulates spans for one cluster run. A nil *Recorder is the
// disabled state: every method is a no-op returning zero values, so call
// sites need no flag checks. The simulation is single-threaded, so the
// recorder needs no locking.
type Recorder struct {
	spans   []Span
	dropped int64
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether spans are being captured.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one span. No-op on a nil recorder; drops (and counts) once
// the span cap is reached.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	if len(r.spans) >= maxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// Spans returns the recorded spans (the recorder's own slice; callers must
// not mutate it). Nil on a disabled recorder.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Dropped returns how many spans were discarded at the cap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}
