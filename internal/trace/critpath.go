package trace

import (
	"sort"
	"time"

	"massbft/internal/keys"
	"massbft/internal/types"
)

// Segment is one piece of an entry's critical path: the stage that was the
// innermost active work during that slice of the entry's lifetime.
type Segment struct {
	Stage string
	Start time.Duration
	End   time.Duration
}

// Dur returns the segment length.
func (s Segment) Dur() time.Duration { return s.End - s.Start }

// EntryPath is one entry's reconstructed critical path as seen from the
// vantage node: a gapless partition of [Start, End] — proposal instant to
// execution start — so the segment durations sum to the entry's measured
// end-to-end latency exactly.
type EntryPath struct {
	Entry    types.EntryID
	Start    time.Duration
	End      time.Duration
	Segments []Segment
}

// E2E returns the entry's end-to-end latency (propose → execution start).
func (p EntryPath) E2E() time.Duration { return p.End - p.Start }

// StageStat aggregates one stage's contribution across all entry paths.
type StageStat struct {
	Stage string
	// Total is the summed critical-path time attributed to this stage.
	Total time.Duration
	// Avg is Total divided by the number of analyzed entries (so the per-
	// stage averages sum to the average end-to-end latency, up to integer
	// rounding).
	Avg time.Duration
	// Share is Total as a fraction of all entries' end-to-end time.
	Share float64
}

// Report is the output of Analyze.
type Report struct {
	// Entries holds one critical path per entry executed at the vantage
	// node, in execution order.
	Entries []EntryPath
	// Stages aggregates stage contributions, largest Total first.
	Stages []StageStat
	// Dominant is the stage with the largest Total ("" when no entries).
	Dominant string
	// E2EAvg is the mean end-to-end latency across analyzed entries.
	E2EAvg time.Duration
}

// originStages are recorded only on the proposer node, so they are unique
// per entry and always belong on the critical path regardless of vantage.
var originStages = map[string]bool{
	StagePropose:        true,
	StagePrePrepare:     true,
	StagePrepare:        true,
	StageCommit:         true,
	StageLocalConsensus: true,
	StageEncode:         true,
}

// Analyze reconstructs each entry's critical path from the vantage of one
// observer node. For every entry the observer executed, the window [propose,
// execution start] is partitioned by the "innermost active span" rule: at
// each instant, among the selected spans covering it (the observer's own
// spans plus the proposer-side origin spans), the one that started latest —
// ties to the shorter span — is the work actually blocking the entry; slices
// no span covers become StageWait. The partition is gapless by construction,
// so each path's segment sum equals the entry's measured end-to-end latency.
func Analyze(spans []Span, observer keys.NodeID) *Report {
	byEntry := make(map[types.EntryID][]Span)
	var order []types.EntryID
	for _, s := range spans {
		if s.Node != observer && !originStages[s.Stage] {
			continue
		}
		if _, ok := byEntry[s.Entry]; !ok {
			order = append(order, s.Entry)
		}
		byEntry[s.Entry] = append(byEntry[s.Entry], s)
	}

	rep := &Report{}
	totals := make(map[string]time.Duration)
	var e2eSum time.Duration
	for _, id := range order {
		path, ok := analyzeEntry(id, byEntry[id], observer)
		if !ok {
			continue
		}
		rep.Entries = append(rep.Entries, path)
		e2eSum += path.E2E()
		for _, seg := range path.Segments {
			totals[seg.Stage] += seg.Dur()
		}
	}
	sort.Slice(rep.Entries, func(i, j int) bool { return rep.Entries[i].End < rep.Entries[j].End })
	n := len(rep.Entries)
	if n == 0 {
		return rep
	}
	rep.E2EAvg = e2eSum / time.Duration(n)
	for stage, total := range totals {
		rep.Stages = append(rep.Stages, StageStat{
			Stage: stage,
			Total: total,
			Avg:   total / time.Duration(n),
			Share: float64(total) / float64(e2eSum),
		})
	}
	sort.Slice(rep.Stages, func(i, j int) bool {
		if rep.Stages[i].Total != rep.Stages[j].Total {
			return rep.Stages[i].Total > rep.Stages[j].Total
		}
		return rep.Stages[i].Stage < rep.Stages[j].Stage
	})
	rep.Dominant = rep.Stages[0].Stage
	return rep
}

// analyzeEntry partitions one entry's lifecycle window. Entries the observer
// never executed (still in flight at run end) are skipped.
func analyzeEntry(id types.EntryID, spans []Span, observer keys.NodeID) (EntryPath, bool) {
	var t0, t1 time.Duration
	haveExec, havePropose := false, false
	for _, s := range spans {
		if s.Stage == StageExecute && s.Node == observer {
			t1 = s.Start // the e2e latency metric stops at execution start
			haveExec = true
		}
		if s.Stage == StagePropose {
			t0 = s.Start
			havePropose = true
		}
	}
	if !haveExec {
		return EntryPath{}, false
	}
	if !havePropose {
		// Repair paths can re-propose an entry without a fresh propose span;
		// fall back to the earliest span start (== Entry.Term for the
		// local-consensus and global-replication spans).
		t0 = t1
		for _, s := range spans {
			if s.Start < t0 {
				t0 = s.Start
			}
		}
	}
	if t1 < t0 {
		return EntryPath{}, false
	}
	path := EntryPath{Entry: id, Start: t0, End: t1}

	// Collect the boundary points inside the window.
	cuts := []time.Duration{t0, t1}
	for _, s := range spans {
		if s.Start > t0 && s.Start < t1 {
			cuts = append(cuts, s.Start)
		}
		if s.End > t0 && s.End < t1 {
			cuts = append(cuts, s.End)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	// Walk the slices; adjacent slices with the same winning stage merge.
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi <= lo {
			continue
		}
		stage := innermost(spans, lo, hi)
		if k := len(path.Segments); k > 0 && path.Segments[k-1].Stage == stage {
			path.Segments[k-1].End = hi
		} else {
			path.Segments = append(path.Segments, Segment{Stage: stage, Start: lo, End: hi})
		}
	}
	if len(path.Segments) == 0 && t1 > t0 {
		path.Segments = append(path.Segments, Segment{Stage: StageWait, Start: t0, End: t1})
	}
	return path, true
}

// innermost picks the span that owns the slice [lo, hi): the covering span
// with the latest start, ties to the shorter span, then to the stage name
// for determinism. StageWait when nothing covers the slice.
func innermost(spans []Span, lo, hi time.Duration) string {
	best := -1
	for i, s := range spans {
		if s.Start > lo || s.End < hi || s.End == s.Start {
			continue // does not cover the slice (instant spans own nothing)
		}
		if best < 0 {
			best = i
			continue
		}
		b := spans[best]
		switch {
		case s.Start != b.Start:
			if s.Start > b.Start {
				best = i
			}
		case s.End != b.End:
			if s.End < b.End {
				best = i
			}
		case s.Stage < b.Stage:
			best = i
		}
	}
	if best < 0 {
		return StageWait
	}
	return spans[best].Stage
}
