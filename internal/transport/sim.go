package transport

import (
	"massbft/internal/keys"
	"massbft/internal/simnet"
)

// SimNetwork adapts the deterministic in-process emulator to the transport
// seam. It is a zero-cost veneer: Endpoint returns the *simnet.Node itself
// (which already satisfies Endpoint), and SetHandler installs a thin shim
// that re-labels simnet.Message as transport.Message. No scheduling, rng
// draw, or allocation order changes, so a cluster run through the seam is
// bit-identical to one wired directly against the emulator.
type SimNetwork struct {
	nw *simnet.Network
}

// NewSimNetwork wraps an emulated network.
func NewSimNetwork(nw *simnet.Network) *SimNetwork { return &SimNetwork{nw: nw} }

// Endpoint implements Network.
func (s *SimNetwork) Endpoint(id keys.NodeID) Endpoint {
	n := s.nw.Node(id)
	if n == nil {
		return nil
	}
	return n
}

// SetHandler implements Network.
func (s *SimNetwork) SetHandler(id keys.NodeID, h Handler) {
	s.nw.SetHandler(id, simHandler{h})
}

// Close implements Network. The emulator has no resources to release; the
// harness that built it owns its lifecycle.
func (s *SimNetwork) Close() error { return nil }

// simHandler bridges the emulator's delivery callback to the seam handler.
type simHandler struct{ h Handler }

func (s simHandler) HandleMessage(_ *simnet.Node, msg simnet.Message) {
	s.h.HandleMessage(Message{From: msg.From, To: msg.To, Payload: msg.Payload, Size: msg.Size})
}
