package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	flagSets := []byte{0, FlagPriority, FlagControl, FlagPriority | FlagControl}
	for _, p := range payloads {
		for _, fl := range flagSets {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, fl, p); err != nil {
				t.Fatalf("write: %v", err)
			}
			gotFlags, got, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if gotFlags != fl || !bytes.Equal(got, p) {
				t.Fatalf("round-trip mismatch: flags %d->%d, %d bytes -> %d", fl, gotFlags, len(p), len(got))
			}
		}
	}
}

// TestFrameCorruption: flipping any single byte of a frame must make
// ReadFrame reject it (magic, version, flags, length, or checksum error) —
// never decode silently, never panic.
func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FlagPriority, []byte("the payload under test")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := range frame {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= bit
			_, _, err := ReadFrame(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("corrupted byte %d (bit %#x) accepted", i, bit)
			}
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := 0; i < len(frame); i++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:i]))
		if err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) accepted", i, len(frame))
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
			!errors.Is(err, ErrFrameMagic) && !errors.Is(err, ErrFrameChecksum) {
			// Any of the above is fine; anything else is unexpected.
			t.Fatalf("truncation at %d: unexpected error %v", i, err)
		}
	}
}

func TestFrameLimits(t *testing.T) {
	// Oversize write is refused before touching the writer.
	err := WriteFrame(io.Discard, 0, make([]byte, MaxFrameSize+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize write: got %v", err)
	}
	// A hostile length prefix is refused before allocation.
	hdr := []byte{'M', 'B', FrameVersion, 0}
	hdr = binary.BigEndian.AppendUint32(hdr, MaxFrameSize+1)
	hdr = binary.BigEndian.AppendUint32(hdr, 0)
	_, _, err = ReadFrame(bytes.NewReader(hdr))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile length: got %v", err)
	}
	// Unknown flag bits are refused (reserved for future versions).
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, []byte("p")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[3] = 0x80
	_, _, err = ReadFrame(bytes.NewReader(frame))
	if !errors.Is(err, ErrFrameFlags) {
		t.Fatalf("unknown flags: got %v", err)
	}
	// Wrong version is refused.
	frame[3] = 0
	frame[2] = FrameVersion + 1
	_, _, err = ReadFrame(bytes.NewReader(frame))
	if !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("wrong version: got %v", err)
	}
}
