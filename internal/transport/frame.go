package transport

// Wire framing for stream transports. Every frame is:
//
//	offset  size  field
//	0       2     magic "MB"
//	2       1     version (currently 1)
//	3       1     flags (bit 0: priority lane, bit 1: control frame)
//	4       4     payload length, big-endian (bounded by MaxFrameSize)
//	8       4     CRC-32C (Castagnoli) of bytes 0..8 plus the payload
//	12      n     payload
//
// The header is fixed-width so a reader can sync on it with one ReadFull,
// and the checksum covers the whole frame (header prefix included, so a
// flipped flags or length byte is caught too): a corrupted or truncated
// frame is rejected before the envelope decoder ever sees it. Version is per-frame
// rather than per-connection so mixed-version peers fail loudly on the
// first message instead of silently misparsing.
//
// Control frames (FlagControl) carry transport-internal payloads — the
// identity handshake and heartbeat pings — and never reach protocol code.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame constants.
const (
	frameMagic0  = 'M'
	frameMagic1  = 'B'
	FrameVersion = 1
	frameHeader  = 12

	// MaxFrameSize bounds a single payload. Checkpoints dominate frame
	// size (they embed ledger suffix + state snapshot); 64 MiB leaves
	// generous headroom while keeping a hostile length prefix from
	// ballooning allocation.
	MaxFrameSize = 64 << 20
)

// Frame flag bits.
const (
	FlagPriority = 1 << 0
	FlagControl  = 1 << 1

	flagKnown = FlagPriority | FlagControl
)

// Framing errors.
var (
	ErrFrameMagic    = errors.New("transport: bad frame magic")
	ErrFrameVersion  = errors.New("transport: unsupported frame version")
	ErrFrameFlags    = errors.New("transport: unknown frame flags")
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	ErrFrameChecksum = errors.New("transport: frame checksum mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends a framed payload to dst and returns the extended
// slice. It is the allocation-free core of WriteFrame.
func AppendFrame(dst []byte, flags byte, payload []byte) []byte {
	base := len(dst)
	dst = append(dst, frameMagic0, frameMagic1, FrameVersion, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	sum := crc32.Checksum(dst[base:base+8], castagnoli)
	sum = crc32.Update(sum, castagnoli, payload)
	dst = binary.BigEndian.AppendUint32(dst, sum)
	return append(dst, payload...)
}

// WriteFrame writes one framed payload to w.
func WriteFrame(w io.Writer, flags byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, frameHeader+len(payload)), flags, payload))
	return err
}

// ReadFrame reads one frame from r, validating magic, version, flags, size
// bound, and checksum. On success it returns the flags and payload. Any
// validation failure is a permanent stream error: framing is lost, so the
// caller must drop the connection.
func ReadFrame(r io.Reader) (flags byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, nil, ErrFrameMagic
	}
	if hdr[2] != FrameVersion {
		return 0, nil, fmt.Errorf("%w: %d", ErrFrameVersion, hdr[2])
	}
	flags = hdr[3]
	if flags&^flagKnown != 0 {
		return 0, nil, fmt.Errorf("%w: %#x", ErrFrameFlags, flags)
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	sum := binary.BigEndian.Uint32(hdr[8:12])
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
	}
	want := crc32.Checksum(hdr[:8], castagnoli)
	want = crc32.Update(want, castagnoli, payload)
	if want != sum {
		return 0, nil, ErrFrameChecksum
	}
	return flags, payload, nil
}
