package transport

// FaultInjector wraps any Network and applies seeded faults at the seam —
// the same chaos philosophy as the simnet fault layer, but usable over the
// real TCP backend. It perturbs traffic *above* the fabric:
//
//   - drop: the send never reaches the inner fabric;
//   - delay: the send is re-scheduled on the sender's event loop after a
//     seeded interval (so even the TCP backend sees reordering);
//   - corrupt: the payload is round-tripped through the injected codec with
//     one byte flipped — if the flip breaks decoding the message is dropped
//     (exactly what the frame checksum would do), otherwise the corrupted
//     decode is delivered, exercising the protocol's validation paths;
//   - disconnect: a directed peer pair goes dark for a window, emulating a
//     link cut the connection supervisor must ride out.
//
// What it cannot do that simnet can: it has no global virtual clock, so it
// cannot make faults deterministic across processes or compress time; and it
// perturbs whole payloads, not bytes on a live socket (kernel-level partial
// writes are out of scope). Use simnet for reproducible protocol chaos; use
// this to harden a real deployment.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"massbft/internal/keys"
)

// FaultConfig parameterizes the injector. All rates are probabilities per
// send in [0,1], evaluated in order: disconnect window, drop, corrupt,
// delay.
type FaultConfig struct {
	Seed int64

	DropRate    float64
	CorruptRate float64

	DelayRate          float64
	DelayMin, DelayMax time.Duration

	DisconnectRate float64
	DisconnectDur  time.Duration

	// Encode/Decode are the envelope codec used for corruption faults
	// (typically cluster.EncodeEnvelope/DecodeEnvelope, injected to avoid
	// an import cycle). If nil, corrupt faults degrade to drops.
	Encode func(payload any) ([]byte, error)
	Decode func(buf []byte) (any, error)
}

// FaultStats counts injected faults, readable concurrently.
type FaultStats struct {
	Dropped     atomic.Uint64
	Delayed     atomic.Uint64
	Corrupted   atomic.Uint64
	Disconnects atomic.Uint64
}

// FaultInjector implements Network by delegating to an inner fabric with
// seeded interference. Handlers pass through untouched.
type FaultInjector struct {
	inner Network
	cfg   FaultConfig
	Stats FaultStats

	mu  sync.Mutex
	rng *rand.Rand
	cut map[[2]keys.NodeID]time.Duration // directed pair -> dark until (sender clock)
}

// NewFaultInjector wraps inner with seeded fault injection.
func NewFaultInjector(inner Network, cfg FaultConfig) *FaultInjector {
	return &FaultInjector{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cut:   make(map[[2]keys.NodeID]time.Duration),
	}
}

// Endpoint implements Network.
func (f *FaultInjector) Endpoint(id keys.NodeID) Endpoint {
	ep := f.inner.Endpoint(id)
	if ep == nil {
		return nil
	}
	return &faultEndpoint{inj: f, id: id, ep: ep}
}

// SetHandler implements Network.
func (f *FaultInjector) SetHandler(id keys.NodeID, h Handler) { f.inner.SetHandler(id, h) }

// Close implements Network.
func (f *FaultInjector) Close() error { return f.inner.Close() }

// faultAction is the decision for one send.
type faultAction struct {
	drop    bool
	corrupt bool
	delay   time.Duration
}

// decide rolls the dice for one send under the mutex (endpoints of distinct
// nodes share this process and call concurrently).
func (f *FaultInjector) decide(from, to keys.NodeID, now time.Duration) faultAction {
	f.mu.Lock()
	defer f.mu.Unlock()
	pair := [2]keys.NodeID{from, to}
	if until, ok := f.cut[pair]; ok {
		if now < until {
			return faultAction{drop: true}
		}
		delete(f.cut, pair)
	}
	if f.cfg.DisconnectRate > 0 && f.rng.Float64() < f.cfg.DisconnectRate {
		f.cut[pair] = now + f.cfg.DisconnectDur
		f.Stats.Disconnects.Add(1)
		return faultAction{drop: true}
	}
	if f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate {
		return faultAction{drop: true}
	}
	var a faultAction
	if f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate {
		a.corrupt = true
	}
	if f.cfg.DelayRate > 0 && f.rng.Float64() < f.cfg.DelayRate {
		span := f.cfg.DelayMax - f.cfg.DelayMin
		a.delay = f.cfg.DelayMin
		if span > 0 {
			a.delay += time.Duration(f.rng.Int63n(int64(span)))
		}
	}
	return a
}

// flipByte returns enc with one seeded byte XOR-flipped.
func (f *FaultInjector) flipByte(enc []byte) {
	f.mu.Lock()
	i := f.rng.Intn(len(enc))
	bit := byte(1) << f.rng.Intn(8)
	f.mu.Unlock()
	enc[i] ^= bit
}

type faultEndpoint struct {
	inj *FaultInjector
	id  keys.NodeID
	ep  Endpoint
}

func (e *faultEndpoint) send(to keys.NodeID, payload any, size int, prio bool) {
	f := e.inj
	a := f.decide(e.id, to, e.ep.Now())
	if a.drop {
		f.Stats.Dropped.Add(1)
		return
	}
	if a.corrupt {
		if f.cfg.Encode == nil || f.cfg.Decode == nil {
			f.Stats.Dropped.Add(1)
			return
		}
		enc, err := f.cfg.Encode(payload)
		if err != nil || len(enc) == 0 {
			f.Stats.Dropped.Add(1)
			return
		}
		f.flipByte(enc)
		mangled, err := f.cfg.Decode(enc)
		if err != nil {
			// The flip broke the encoding; a checksumming wire would
			// reject the frame, so the send becomes a drop.
			f.Stats.Dropped.Add(1)
			return
		}
		f.Stats.Corrupted.Add(1)
		payload = mangled
	}
	deliver := func() {
		if prio {
			e.ep.SendPriority(to, payload, size)
		} else {
			e.ep.Send(to, payload, size)
		}
	}
	if a.delay > 0 {
		f.Stats.Delayed.Add(1)
		p := payload
		e.ep.After(a.delay, func() {
			if prio {
				e.ep.SendPriority(to, p, size)
			} else {
				e.ep.Send(to, p, size)
			}
		})
		return
	}
	deliver()
}

func (e *faultEndpoint) Send(to keys.NodeID, payload any, size int) {
	e.send(to, payload, size, false)
}

func (e *faultEndpoint) SendPriority(to keys.NodeID, payload any, size int) {
	e.send(to, payload, size, true)
}

func (e *faultEndpoint) After(d time.Duration, fn func()) { e.ep.After(d, fn) }
func (e *faultEndpoint) Now() time.Duration               { return e.ep.Now() }
func (e *faultEndpoint) Charge(d time.Duration)           { e.ep.Charge(d) }
