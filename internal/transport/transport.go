// Package transport defines the message-fabric seam between protocol nodes
// and the network that carries their traffic. Protocol code (internal/core)
// speaks only to the interfaces here; the concrete fabric is chosen at
// wiring time:
//
//   - the deterministic in-process emulator (internal/simnet, adapted by
//     SimNetwork in this package) — every test and benchmark runs on it,
//     bit-identically to the pre-seam wiring;
//   - the real TCP backend (internal/transport/tcp) — per-peer supervised
//     connections with reconnect/backoff, bounded queues, heartbeats, and a
//     length-framed, checksummed wire format — used by cmd/massbft-node to
//     run a cluster as N OS processes;
//   - the FaultInjector wrapper (fault.go), which applies seeded
//     drop/delay/corrupt faults to any inner Network so the chaos philosophy
//     of the simnet fault layer carries over to the real stack.
//
// The seam deliberately mirrors the discrete-event programming model the
// protocol was built on: each node is single-threaded, all of its message
// handling and timer callbacks run serialized on one logical event loop, and
// Send never blocks (backpressure is a bounded-queue drop, which the
// protocol's repair paths recover from, not a stall of consensus).
package transport

import (
	"time"

	"massbft/internal/keys"
)

// Message is a payload in flight between two nodes. Size is the number of
// bytes the message occupies on the wire; the simulated fabric uses it to
// model serialization delay, the real fabric for accounting only (the codec
// determines actual bytes).
type Message struct {
	From, To keys.NodeID
	Payload  any
	Size     int
}

// Handler processes messages delivered to a node. Implementations are not
// required to be safe for concurrent use: every fabric guarantees that one
// node's HandleMessage and timer callbacks never run concurrently.
type Handler interface {
	HandleMessage(msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(msg Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(msg Message) { f(msg) }

// Endpoint is one node's handle on the fabric — the exact surface protocol
// nodes were written against (the simnet node API):
//
//   - Send / SendPriority enqueue a message and return immediately. The
//     priority lane exists because consensus control records must not queue
//     behind bulk chunk transfers; real backends multiplex it over the same
//     connection but drain it first.
//   - After schedules fn on this node's event loop after d has elapsed on
//     the fabric's clock (virtual time in simnet, wall clock over TCP).
//   - Now returns time elapsed on that clock since the fabric started.
//   - Charge models CPU cost on fabrics with a cost model (simnet); real
//     backends burn real CPU and implement it as a no-op.
type Endpoint interface {
	Send(to keys.NodeID, payload any, size int)
	SendPriority(to keys.NodeID, payload any, size int)
	After(d time.Duration, fn func())
	Now() time.Duration
	Charge(d time.Duration)
}

// Network owns the endpoints living in this process and routes between them
// and (for real backends) remote peers.
type Network interface {
	// Endpoint returns the handle for a locally hosted node, or nil if the
	// node is not hosted here.
	Endpoint(id keys.NodeID) Endpoint
	// SetHandler installs the message handler for a locally hosted node.
	// Must be called before traffic flows.
	SetHandler(id keys.NodeID, h Handler)
	// Close drains and shuts the fabric down. For real backends this stops
	// accepting new sends, flushes what the drain budget allows, closes
	// connections, and stops the event loops; the emulator adapter is a
	// no-op (the test harness owns the emulator's lifecycle).
	Close() error
}
