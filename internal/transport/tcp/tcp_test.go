package tcp

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"massbft/internal/keys"
	"massbft/internal/transport"
)

// Test codec: payloads are plain []byte, moved verbatim.
func testEncode(p any) ([]byte, error) {
	b, ok := p.([]byte)
	if !ok {
		return nil, errors.New("test codec: not []byte")
	}
	return b, nil
}
func testDecode(b []byte) (any, error) { return b, nil }

// freeAddrs reserves n distinct loopback addresses. There is a small window
// between releasing and re-binding them, which is fine for tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	ls := make([]net.Listener, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range ls {
		l.Close()
	}
	return addrs
}

func fastConfig(self keys.NodeID, listen string, peers map[keys.NodeID]string) Config {
	return Config{
		Self: self, Listen: listen, Peers: peers,
		Encode: testEncode, Decode: testDecode,
		DialTimeout: 500 * time.Millisecond, SendTimeout: 500 * time.Millisecond,
		BackoffMin: 10 * time.Millisecond, BackoffMax: 200 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 250 * time.Millisecond,
		DrainTimeout: 500 * time.Millisecond,
	}
}

// collector accumulates delivered messages.
type collector struct {
	mu   sync.Mutex
	msgs []transport.Message
}

func (c *collector) HandleMessage(m transport.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDelivery: both lanes deliver between two networks, self-sends loop
// back without a socket, and byte counters move.
func TestDelivery(t *testing.T) {
	addrs := freeAddrs(t, 2)
	a, b := keys.NodeID{Group: 0, Index: 0}, keys.NodeID{Group: 0, Index: 1}

	na, err := New(fastConfig(a, addrs[0], map[keys.NodeID]string{b: addrs[1]}))
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	nb, err := New(fastConfig(b, addrs[1], map[keys.NodeID]string{a: addrs[0]}))
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()

	ca, cb := &collector{}, &collector{}
	na.SetHandler(a, ca)
	nb.SetHandler(b, cb)

	if na.Endpoint(b) != nil {
		t.Fatal("endpoint for a non-hosted node should be nil")
	}
	ep := na.Endpoint(a)
	for i := 0; i < 50; i++ {
		ep.Send(b, []byte{byte(i)}, 1)
		ep.SendPriority(b, []byte{0x80 | byte(i)}, 1)
	}
	ep.Send(a, []byte("self"), 4)

	waitFor(t, 5*time.Second, "remote deliveries", func() bool { return cb.count() == 100 })
	waitFor(t, time.Second, "self delivery", func() bool { return ca.count() == 1 })

	cb.mu.Lock()
	for _, m := range cb.msgs {
		if m.From != a || m.To != b {
			cb.mu.Unlock()
			t.Fatalf("mislabeled delivery: %+v", m)
		}
	}
	cb.mu.Unlock()

	st := na.Stats()
	if st.Connects != 1 || st.BytesOut == 0 {
		t.Fatalf("sender stats off: %+v", st)
	}
	if rs := nb.Stats(); rs.BytesIn == 0 {
		t.Fatalf("receiver saw no bytes: %+v", rs)
	}
}

// TestReconnect: killing and recreating the receiving network forces the
// sender's supervisor through its backoff loop; traffic resumes and the
// reconnect is visible in the stats.
func TestReconnect(t *testing.T) {
	addrs := freeAddrs(t, 2)
	a, b := keys.NodeID{Group: 0, Index: 0}, keys.NodeID{Group: 0, Index: 1}

	na, err := New(fastConfig(a, addrs[0], map[keys.NodeID]string{b: addrs[1]}))
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	nb, err := New(fastConfig(b, addrs[1], map[keys.NodeID]string{a: addrs[0]}))
	if err != nil {
		t.Fatal(err)
	}
	cb := &collector{}
	nb.SetHandler(b, cb)

	ep := na.Endpoint(a)
	ep.Send(b, []byte("before"), 6)
	waitFor(t, 5*time.Second, "initial delivery", func() bool { return cb.count() == 1 })

	// Kill the receiver. The sender's heartbeats (or the next write) will
	// notice, and its supervisor enters dial/backoff against a dead port.
	nb.Close()
	waitFor(t, 5*time.Second, "sender to notice the dead peer", func() bool {
		st := na.Stats()
		return st.DialFailures > 0 || st.HeartbeatMisses > 0 || st.SendTimeouts > 0
	})

	// Resurrect the receiver on the same address; the supervisor must
	// re-establish and deliver fresh traffic.
	nb2, err := New(fastConfig(b, addrs[1], map[keys.NodeID]string{a: addrs[0]}))
	if err != nil {
		t.Fatal(err)
	}
	defer nb2.Close()
	cb2 := &collector{}
	nb2.SetHandler(b, cb2)

	waitFor(t, 10*time.Second, "redelivery after restart", func() bool {
		ep.Send(b, []byte("after"), 5)
		return cb2.count() > 0
	})
	if st := na.Stats(); st.Reconnects == 0 {
		t.Fatalf("expected reconnects > 0: %+v", st)
	}
}

// TestQueueDropAndTimers: with the peer down, a tiny bulk queue overflows
// and drops (never blocks); After fires on the event loop.
func TestQueueDropAndTimers(t *testing.T) {
	addrs := freeAddrs(t, 2)
	a, b := keys.NodeID{Group: 0, Index: 0}, keys.NodeID{Group: 0, Index: 1}

	cfg := fastConfig(a, addrs[0], map[keys.NodeID]string{b: addrs[1]})
	cfg.QueueBulk, cfg.QueuePrio = 2, 2
	na, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()

	ep := na.Endpoint(a)
	done := make(chan struct{})
	start := time.Now()
	ep.After(30*time.Millisecond, func() { close(done) })
	select {
	case <-done:
		if time.Since(start) < 25*time.Millisecond {
			t.Fatal("timer fired early")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}

	// Nobody is listening on b's address: the queue fills, then drops.
	for i := 0; i < 100; i++ {
		ep.Send(b, []byte{byte(i)}, 1)
		ep.SendPriority(b, []byte{byte(i)}, 1)
	}
	st := na.Stats()
	if st.QueueDropBulk == 0 || st.QueueDropPrio == 0 {
		t.Fatalf("expected drops on both lanes: %+v", st)
	}
	if ep.Now() <= 0 {
		t.Fatal("Now must advance")
	}
}

// TestPriorityLaneNeverDropsUnderBulkSaturation pins the gateway-reply
// delivery guarantee: client replies travel the priority lane, so a bulk
// lane saturated with replication traffic must shed ONLY bulk frames — and
// the per-kind drop breakdown must attribute every drop to the bulk kind.
func TestPriorityLaneNeverDropsUnderBulkSaturation(t *testing.T) {
	addrs := freeAddrs(t, 2)
	a, b := keys.NodeID{Group: 0, Index: 0}, keys.NodeID{Group: 0, Index: 1}

	cfg := fastConfig(a, addrs[0], map[keys.NodeID]string{b: addrs[1]})
	cfg.QueueBulk = 4 // tiny bulk lane: saturates after 4 frames
	cfg.QueuePrio = 256
	na, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	ep := na.Endpoint(a)

	// Nobody listens on b's address, so neither lane drains: queue
	// occupancy and drops are exact. Kind bytes mirror the wire contract:
	// 5 = chunk-batch (replication bulk), 17 = client-reply.
	const kindBulk, kindReply = 5, 17
	for i := 0; i < 100; i++ {
		ep.Send(b, []byte{kindBulk, byte(i)}, 2)
	}
	for i := 0; i < 50; i++ {
		ep.SendPriority(b, []byte{kindReply, byte(i)}, 2)
	}
	st := na.Stats()
	if st.QueueDropPrio != 0 {
		t.Fatalf("client replies dropped on the priority lane: %+v", st)
	}
	if st.QueueDropBulk != 96 {
		t.Fatalf("bulk lane should have shed exactly 96 of 100 frames, dropped %d", st.QueueDropBulk)
	}
	if got := st.DropsByKind[kindBulk]; got != 96 {
		t.Fatalf("per-kind breakdown lost bulk drops: DropsByKind[%d]=%d want 96", kindBulk, got)
	}
	if got, ok := st.DropsByKind[kindReply]; ok {
		t.Fatalf("per-kind breakdown charges %d drops to client replies; none happened", got)
	}
}
