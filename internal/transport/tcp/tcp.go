// Package tcp is the real-network transport backend: it implements
// transport.Network over TCP with per-peer supervised connections, so a
// MassBFT cluster can run as N OS processes on loopback or a real WAN.
//
// Each process hosts exactly one protocol node. The design preserves the
// discrete-event programming model the protocol was written against:
//
//   - one event-loop goroutine per node serializes every HandleMessage call
//     and After timer callback (protocol code stays single-threaded);
//   - Send/SendPriority never block: payloads are encoded on the caller,
//     framed, and pushed onto a bounded per-peer queue. A full queue drops
//     the frame and counts it — the protocol's repair paths (chunk NACK
//     repair, stream fetch, catch-up) recover lost traffic, and dropping
//     beats stalling consensus behind a slow peer;
//   - a connection supervisor per peer owns the dialed connection: dial with
//     deadline, identify via a hello control frame, write with send
//     deadlines, reconnect on any failure with exponential backoff plus
//     seeded jitter, and probe liveness with ping/pong heartbeats. Outbound
//     traffic uses the dialed connection only; inbound arrives on
//     connections the listener accepts, so each direction heals
//     independently;
//   - the priority lane is strict: the writer drains priority frames before
//     bulk ones, mirroring the simnet interface's two token buckets.
//
// The codec is injected (cluster.EncodeEnvelope/DecodeEnvelope) to keep this
// package free of protocol imports.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"massbft/internal/keys"
	"massbft/internal/transport"
)

// Control frame payloads (transport.FlagControl).
const (
	ctlHello = 1 // + group u32 + index u32: identifies the dialing node
	ctlPing  = 2
	ctlPong  = 3
)

// Config wires up one process-hosted node.
type Config struct {
	// Self is the node this process hosts; Listen its accept address.
	Self   keys.NodeID
	Listen string
	// Peers maps every other node to its dialable address.
	Peers map[keys.NodeID]string

	// Encode/Decode translate protocol payloads to wire bytes (injected,
	// typically cluster.EncodeEnvelope / cluster.DecodeEnvelope).
	Encode func(payload any) ([]byte, error)
	Decode func(buf []byte) (any, error)

	// Seed drives backoff jitter. Zero is a valid seed.
	Seed int64

	DialTimeout time.Duration // per dial attempt
	SendTimeout time.Duration // write deadline per frame

	BackoffMin time.Duration // first reconnect delay
	BackoffMax time.Duration // backoff cap

	HeartbeatInterval time.Duration // ping cadence on idle connections
	HeartbeatTimeout  time.Duration // silence after which the conn is declared dead

	QueueBulk int // per-peer bulk lane capacity (frames)
	QueuePrio int // per-peer priority lane capacity (frames)

	DrainTimeout time.Duration // flush budget for queued frames on Close

	// Logf, if set, receives connection lifecycle events.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	def := func(d *time.Duration, v time.Duration) {
		if *d <= 0 {
			*d = v
		}
	}
	def(&c.DialTimeout, 2*time.Second)
	def(&c.SendTimeout, 2*time.Second)
	def(&c.BackoffMin, 50*time.Millisecond)
	def(&c.BackoffMax, 2*time.Second)
	def(&c.HeartbeatInterval, 500*time.Millisecond)
	def(&c.HeartbeatTimeout, 3*time.Second)
	def(&c.DrainTimeout, 2*time.Second)
	if c.QueueBulk <= 0 {
		c.QueueBulk = 4096
	}
	if c.QueuePrio <= 0 {
		c.QueuePrio = 4096
	}
	return c
}

// Stats is a snapshot of transport health counters.
type Stats struct {
	Connects        uint64 // successful dials (first connection per peer included)
	Reconnects      uint64 // successful dials after a previous connection existed
	DialFailures    uint64
	SendTimeouts    uint64
	QueueDropBulk   uint64
	QueueDropPrio   uint64
	HeartbeatMisses uint64
	BytesOut        uint64
	BytesIn         uint64
	EncodeErrors    uint64
	DecodeErrors    uint64
	RecvErrors      uint64 // inbound framing/handshake failures

	// DropsByKind breaks queue drops down by envelope kind (the first byte
	// of the encoded payload), so "the bulk lane sheds chunk batches under
	// load" and "client replies are being lost" are distinguishable — the
	// former is the designed backpressure policy, the latter a
	// misconfiguration (replies belong on the priority lane). Only kinds
	// with at least one drop appear.
	DropsByKind map[byte]uint64 `json:"drops_by_kind,omitempty"`
}

type stats struct {
	connects, reconnects, dialFailures, sendTimeouts  atomic.Uint64
	queueDropBulk, queueDropPrio                      atomic.Uint64
	heartbeatMisses, bytesOut, bytesIn                atomic.Uint64
	encodeErrors, decodeErrors, recvErrors            atomic.Uint64
	dropsByKind                                       [256]atomic.Uint64
}

// Network implements transport.Network for one process-hosted node.
type Network struct {
	cfg   Config
	ls    net.Listener
	start time.Time
	st    stats

	mu      sync.Mutex
	handler transport.Handler
	sups    map[keys.NodeID]*supervisor
	closed  bool

	box  *mailbox
	done chan struct{}
	wg   sync.WaitGroup
}

// New starts the listener and the node event loop. Traffic is accepted
// immediately, but deliveries wait until SetHandler installs the node.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Encode == nil || cfg.Decode == nil {
		return nil, errors.New("tcp: Config.Encode and Config.Decode are required")
	}
	ls, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Listen, err)
	}
	n := &Network{
		cfg:   cfg,
		ls:    ls,
		start: time.Now(),
		sups:  make(map[keys.NodeID]*supervisor),
		box:   newMailbox(),
		done:  make(chan struct{}),
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.eventLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *Network) Addr() string { return n.ls.Addr().String() }

// Stats snapshots the health counters.
func (n *Network) Stats() Stats {
	var byKind map[byte]uint64
	for k := range n.st.dropsByKind {
		if v := n.st.dropsByKind[k].Load(); v > 0 {
			if byKind == nil {
				byKind = make(map[byte]uint64)
			}
			byKind[byte(k)] = v
		}
	}
	return Stats{
		DropsByKind: byKind,
		Connects:        n.st.connects.Load(),
		Reconnects:      n.st.reconnects.Load(),
		DialFailures:    n.st.dialFailures.Load(),
		SendTimeouts:    n.st.sendTimeouts.Load(),
		QueueDropBulk:   n.st.queueDropBulk.Load(),
		QueueDropPrio:   n.st.queueDropPrio.Load(),
		HeartbeatMisses: n.st.heartbeatMisses.Load(),
		BytesOut:        n.st.bytesOut.Load(),
		BytesIn:         n.st.bytesIn.Load(),
		EncodeErrors:    n.st.encodeErrors.Load(),
		DecodeErrors:    n.st.decodeErrors.Load(),
		RecvErrors:      n.st.recvErrors.Load(),
	}
}

// Endpoint implements transport.Network. Only the hosted node has one.
func (n *Network) Endpoint(id keys.NodeID) transport.Endpoint {
	if id != n.cfg.Self {
		return nil
	}
	return (*endpoint)(n)
}

// SetHandler implements transport.Network.
func (n *Network) SetHandler(id keys.NodeID, h transport.Handler) {
	if id != n.cfg.Self {
		return
	}
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

// Close implements transport.Network: stop accepting, give each supervisor
// its drain budget to flush queued frames, then tear everything down.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	sups := make([]*supervisor, 0, len(n.sups))
	for _, s := range n.sups {
		sups = append(sups, s)
	}
	n.mu.Unlock()

	for _, s := range sups {
		close(s.stop)
	}
	close(n.done)
	n.ls.Close()
	n.box.close()
	n.wg.Wait()
	return nil
}

func (n *Network) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// post schedules fn on the node event loop. Safe from any goroutine,
// including the loop itself (the mailbox is unbounded, so a handler that
// self-sends cannot deadlock).
func (n *Network) post(fn func()) { n.box.put(fn) }

func (n *Network) eventLoop() {
	defer n.wg.Done()
	for {
		fns, ok := n.box.take()
		for _, fn := range fns {
			fn()
		}
		if !ok {
			return
		}
	}
}

func (n *Network) deliver(from keys.NodeID, payload any, size int) {
	n.post(func() {
		n.mu.Lock()
		h := n.handler
		n.mu.Unlock()
		if h == nil {
			return
		}
		h.HandleMessage(transport.Message{From: from, To: n.cfg.Self, Payload: payload, Size: size})
	})
}

// --- endpoint (the hosted node's view of the fabric) ---

type endpoint Network

func (e *endpoint) nw() *Network { return (*Network)(e) }

func (e *endpoint) Send(to keys.NodeID, payload any, size int) {
	e.nw().send(to, payload, false)
}

func (e *endpoint) SendPriority(to keys.NodeID, payload any, size int) {
	e.nw().send(to, payload, true)
}

// After runs fn on the node event loop once d of wall time has elapsed.
func (e *endpoint) After(d time.Duration, fn func()) {
	nw := e.nw()
	time.AfterFunc(d, func() {
		select {
		case <-nw.done:
		default:
			nw.post(fn)
		}
	})
}

// Now is wall time elapsed since the fabric started.
func (e *endpoint) Now() time.Duration { return time.Since(e.nw().start) }

// Charge models simulated CPU cost; real CPU burns itself.
func (e *endpoint) Charge(time.Duration) {}

func (n *Network) send(to keys.NodeID, payload any, prio bool) {
	if to == n.cfg.Self {
		// Loopback: deliver on the event loop without touching a socket.
		n.deliver(to, payload, 0)
		return
	}
	enc, err := n.cfg.Encode(payload)
	if err != nil {
		n.st.encodeErrors.Add(1)
		n.logf("tcp: encode for %v: %v", to, err)
		return
	}
	var flags byte
	if prio {
		flags |= transport.FlagPriority
	}
	frame := transport.AppendFrame(make([]byte, 0, 12+len(enc)), flags, enc)

	s := n.supervisor(to)
	if s == nil {
		return
	}
	lane, dropped := s.bulk, &n.st.queueDropBulk
	if prio {
		lane, dropped = s.prio, &n.st.queueDropPrio
	}
	select {
	case lane <- frame:
	default:
		// Bounded-queue backpressure policy: drop, count, let the
		// protocol's loss-recovery paths repair. Never block the node.
		dropped.Add(1)
		n.st.dropsByKind[enc[0]].Add(1)
	}
}

// supervisor returns (lazily starting) the connection supervisor for a peer.
func (n *Network) supervisor(to keys.NodeID) *supervisor {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	if s, ok := n.sups[to]; ok {
		return s
	}
	addr, ok := n.cfg.Peers[to]
	if !ok {
		n.logf("tcp: no address for peer %v", to)
		return nil
	}
	s := &supervisor{
		nw:   n,
		peer: to,
		addr: addr,
		prio: make(chan []byte, n.cfg.QueuePrio),
		bulk: make(chan []byte, n.cfg.QueueBulk),
		stop: make(chan struct{}),
		rng: rand.New(rand.NewSource(n.cfg.Seed ^
			int64(to.Group)<<32 ^ int64(to.Index)<<16 ^
			int64(n.cfg.Self.Group)<<8 ^ int64(n.cfg.Self.Index))),
	}
	n.sups[to] = s
	n.wg.Add(1)
	go s.run()
	return s
}

// --- outbound: per-peer connection supervisor ---

type supervisor struct {
	nw   *Network
	peer keys.NodeID
	addr string
	prio chan []byte
	bulk chan []byte
	stop chan struct{}
	rng  *rand.Rand

	everConnected bool
	lastAlive     atomic.Int64 // monotonic nanos of last pong/connect
}

// run is the reconnect state machine: Dial -> (fail: Backoff -> Dial) ->
// Connected -> (write error, timeout, or heartbeat loss: Backoff -> Dial),
// with backoff doubling from BackoffMin to BackoffMax, jittered to half its
// nominal value, and reset to zero after every successful dial.
func (s *supervisor) run() {
	defer s.nw.wg.Done()
	cfg := s.nw.cfg
	attempt := 0
	for {
		select {
		case <-s.stop:
			s.drain(nil)
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", s.addr, cfg.DialTimeout)
		if err != nil {
			s.nw.st.dialFailures.Add(1)
			attempt++
			if !s.sleep(s.backoff(attempt)) {
				s.drain(nil)
				return
			}
			continue
		}
		if s.everConnected {
			s.nw.st.reconnects.Add(1)
		} else {
			s.nw.st.connects.Add(1)
		}
		s.everConnected = true
		attempt = 0
		s.nw.logf("tcp: %v connected to %v (%s)", cfg.Self, s.peer, s.addr)
		if s.serve(conn) {
			return // stopped: drained inside serve
		}
		attempt++
		if !s.sleep(s.backoff(attempt)) {
			s.drain(nil)
			return
		}
	}
}

// backoff returns the jittered delay before dial attempt n (1-based).
func (s *supervisor) backoff(attempt int) time.Duration {
	cfg := s.nw.cfg
	d := cfg.BackoffMin << uint(attempt-1)
	if d > cfg.BackoffMax || d <= 0 {
		d = cfg.BackoffMax
	}
	// Jitter in [d/2, d): desynchronizes peers reconnecting to the same
	// restarted node.
	half := d / 2
	if half > 0 {
		d = half + time.Duration(s.rng.Int63n(int64(half)))
	}
	return d
}

func (s *supervisor) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

// serve owns one live connection: hello handshake, strict-priority frame
// writing, heartbeat pings, and a pong reader. Returns true if the
// supervisor should exit (shutdown), false to reconnect.
func (s *supervisor) serve(conn net.Conn) (stopped bool) {
	cfg := s.nw.cfg
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	hello := make([]byte, 0, 9)
	hello = append(hello, ctlHello)
	hello = binary.BigEndian.AppendUint32(hello, uint32(cfg.Self.Group))
	hello = binary.BigEndian.AppendUint32(hello, uint32(cfg.Self.Index))
	if !s.write(conn, transport.AppendFrame(nil, transport.FlagControl, hello)) {
		conn.Close()
		return false
	}
	s.lastAlive.Store(time.Now().UnixNano())

	// Pong reader: the dialed connection is written by this goroutine and
	// read only for heartbeat replies.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			flags, payload, err := transport.ReadFrame(conn)
			if err != nil {
				return
			}
			if flags&transport.FlagControl != 0 && len(payload) >= 1 && payload[0] == ctlPong {
				s.lastAlive.Store(time.Now().UnixNano())
			}
		}
	}()
	defer func() {
		conn.Close()
		<-readerDone
	}()

	hb := time.NewTicker(cfg.HeartbeatInterval)
	defer hb.Stop()
	ping := transport.AppendFrame(nil, transport.FlagControl, []byte{ctlPing})

	for {
		// Strict priority: exhaust the priority lane before considering
		// bulk or housekeeping.
		select {
		case f := <-s.prio:
			if !s.write(conn, f) {
				return false
			}
			continue
		default:
		}
		select {
		case f := <-s.prio:
			if !s.write(conn, f) {
				return false
			}
		case f := <-s.bulk:
			if !s.write(conn, f) {
				return false
			}
		case <-hb.C:
			alive := time.Unix(0, s.lastAlive.Load())
			if time.Since(alive) > cfg.HeartbeatTimeout {
				s.nw.st.heartbeatMisses.Add(1)
				s.nw.logf("tcp: %v heartbeat lost to %v", cfg.Self, s.peer)
				return false
			}
			if !s.write(conn, ping) {
				return false
			}
		case <-s.stop:
			s.drain(conn)
			return true
		}
	}
}

// write sends one frame with the configured deadline. False means the
// connection is dead.
func (s *supervisor) write(conn net.Conn, frame []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(s.nw.cfg.SendTimeout))
	m, err := conn.Write(frame)
	s.nw.st.bytesOut.Add(uint64(m))
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			s.nw.st.sendTimeouts.Add(1)
		}
		return false
	}
	return true
}

// drain flushes whatever the queues still hold within the drain budget.
// conn may be nil (never connected — queued frames are simply discarded).
func (s *supervisor) drain(conn net.Conn) {
	if conn == nil {
		return
	}
	deadline := time.Now().Add(s.nw.cfg.DrainTimeout)
	for time.Now().Before(deadline) {
		var f []byte
		select {
		case f = <-s.prio:
		default:
			select {
			case f = <-s.prio:
			case f = <-s.bulk:
			default:
				return
			}
		}
		if !s.write(conn, f) {
			return
		}
	}
}

// --- inbound: listener and per-connection readers ---

func (n *Network) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ls.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			n.logf("tcp: accept: %v", err)
			continue
		}
		n.wg.Add(1)
		go n.serveInbound(conn)
	}
}

// serveInbound reads frames from one accepted connection. The first frame
// must be a hello identifying a known peer; afterwards data frames are
// decoded and delivered, pings answered with pongs. Any framing error
// (including checksum and version mismatches) kills the connection — the
// remote supervisor will reconnect.
func (n *Network) serveInbound(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	go func() { // tear down mid-read on shutdown
		<-n.done
		conn.Close()
	}()

	from, ok := n.handshake(conn)
	if !ok {
		return
	}
	pong := transport.AppendFrame(nil, transport.FlagControl, []byte{ctlPong})
	for {
		flags, payload, err := transport.ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				n.st.recvErrors.Add(1)
				n.logf("tcp: read from %v: %v", from, err)
			}
			return
		}
		n.st.bytesIn.Add(uint64(12 + len(payload)))
		if flags&transport.FlagControl != 0 {
			if len(payload) >= 1 && payload[0] == ctlPing {
				conn.SetWriteDeadline(time.Now().Add(n.cfg.SendTimeout))
				if _, err := conn.Write(pong); err != nil {
					return
				}
			}
			continue
		}
		payloadAny, err := n.cfg.Decode(payload)
		if err != nil {
			n.st.decodeErrors.Add(1)
			n.logf("tcp: decode from %v: %v", from, err)
			continue // envelope-level garbage from an identified peer: skip it
		}
		n.deliver(from, payloadAny, len(payload))
	}
}

func (n *Network) handshake(conn net.Conn) (keys.NodeID, bool) {
	conn.SetReadDeadline(time.Now().Add(n.cfg.DialTimeout))
	flags, payload, err := transport.ReadFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil || flags&transport.FlagControl == 0 || len(payload) != 9 || payload[0] != ctlHello {
		n.st.recvErrors.Add(1)
		return keys.NodeID{}, false
	}
	from := keys.NodeID{
		Group: int(binary.BigEndian.Uint32(payload[1:5])),
		Index: int(binary.BigEndian.Uint32(payload[5:9])),
	}
	if _, known := n.cfg.Peers[from]; !known && from != n.cfg.Self {
		n.st.recvErrors.Add(1)
		n.logf("tcp: hello from unknown peer %v", from)
		return keys.NodeID{}, false
	}
	n.st.bytesIn.Add(uint64(12 + len(payload)))
	return from, true
}

// --- unbounded mailbox (the node event queue) ---

// mailbox is an unbounded MPSC queue: posts never block (a handler running
// on the loop can self-send without deadlock), and the consumer takes
// batches.
type mailbox struct {
	mu     sync.Mutex
	q      []func()
	wake   chan struct{}
	closed bool
}

func newMailbox() *mailbox {
	return &mailbox{wake: make(chan struct{}, 1)}
}

func (m *mailbox) put(fn func()) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.q = append(m.q, fn)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// take blocks for the next batch. ok=false means the mailbox is closed and
// the returned batch is the final one.
func (m *mailbox) take() ([]func(), bool) {
	for {
		m.mu.Lock()
		q, closed := m.q, m.closed
		m.q = nil
		m.mu.Unlock()
		if len(q) > 0 || closed {
			return q, !closed
		}
		<-m.wake
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}
