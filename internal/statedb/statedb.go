// Package statedb is the in-memory hash-table state store the paper's
// prototype uses to hold database state (§VI "Implementation"). It offers a
// point-lookup/update interface for the Aria executor plus a deterministic
// digest so tests can assert that every node converged to an identical
// state.
package statedb

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Store is a thread-safe in-memory key-value store. The zero value is not
// usable; call New.
type Store struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Get returns the value for key and whether it exists. The returned slice
// must not be modified.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Put stores value under key. The store takes ownership of value.
func (s *Store) Put(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = value
}

// Delete removes key.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// ApplyBatch installs a set of writes atomically. A nil value deletes.
func (s *Store) ApplyBatch(writes map[string][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range writes {
		if v == nil {
			delete(s.data, k)
		} else {
			s.data[k] = v
		}
	}
}

// Hash returns a deterministic digest of the full state: the SHA-256 over
// (key, value) pairs in sorted key order. Two stores with identical contents
// produce identical hashes on every node.
func (s *Store) Hash() [32]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var lenBuf [4]byte
	for _, k := range keys {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(k)))
		h.Write(lenBuf[:])
		h.Write([]byte(k))
		v := s.data[k]
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(v)))
		h.Write(lenBuf[:])
		h.Write(v)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Clone returns a deep copy (used to fork identical initial states for every
// node in tests and benchmarks).
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := New()
	for k, v := range s.data {
		c.data[k] = append([]byte(nil), v...)
	}
	return c
}

// Restore replaces this store's contents with a deep copy of from; the
// receiver pointer stays valid, so holders (e.g. an execution engine) see the
// transferred state without rewiring. Used by checkpointed node rejoin.
func (s *Store) Restore(from *Store) {
	from.mu.RLock()
	data := make(map[string][]byte, len(from.data))
	for k, v := range from.data {
		data[k] = append([]byte(nil), v...)
	}
	from.mu.RUnlock()
	s.mu.Lock()
	s.data = data
	s.mu.Unlock()
}

// ByteSize returns the summed length of all keys and values — the transfer
// cost model for state snapshots.
func (s *Store) ByteSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for k, v := range s.data {
		n += len(k) + len(v)
	}
	return n
}

// Save writes a snapshot of the store to w in deterministic (sorted-key)
// order, prefixed with a magic header and the record count. Together with
// ledger.Save it forms a restart/state-transfer artifact.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("massdb1\x00"); err != nil {
		return fmt.Errorf("statedb: writing header: %w", err)
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(keys)))
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return err
	}
	for _, k := range keys {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(k)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		v := s.data[k]
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(v)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := bw.Write(v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("statedb: reading header: %w", err)
	}
	if string(head) != "massdb1\x00" {
		return nil, fmt.Errorf("statedb: bad magic")
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:]))
	s := New()
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("statedb: record %d key length: %w", i, err)
		}
		klen := int(binary.BigEndian.Uint32(lenBuf[:]))
		if klen > 1<<20 {
			return nil, fmt.Errorf("statedb: record %d key length %d implausible", i, klen)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, fmt.Errorf("statedb: record %d key: %w", i, err)
		}
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("statedb: record %d value length: %w", i, err)
		}
		vlen := int(binary.BigEndian.Uint32(lenBuf[:]))
		if vlen > 1<<28 {
			return nil, fmt.Errorf("statedb: record %d value length %d implausible", i, vlen)
		}
		val := make([]byte, vlen)
		if _, err := io.ReadFull(br, val); err != nil {
			return nil, fmt.Errorf("statedb: record %d value: %w", i, err)
		}
		s.data[string(key)] = val
	}
	return s, nil
}
