package statedb

import (
	"bytes"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put("a", []byte("1"))
	v, ok := s.Get("a")
	if !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatal("Get after Put wrong")
	}
	s.Put("a", []byte("2"))
	v, _ = s.Get("a")
	if !bytes.Equal(v, []byte("2")) {
		t.Fatal("overwrite failed")
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("Delete failed")
	}
	if s.Len() != 0 {
		t.Fatal("Len after delete")
	}
}

func TestApplyBatchWithDeletes(t *testing.T) {
	s := New()
	s.Put("keep", []byte("k"))
	s.Put("drop", []byte("d"))
	s.ApplyBatch(map[string][]byte{"drop": nil, "new": []byte("n")})
	if _, ok := s.Get("drop"); ok {
		t.Fatal("nil value did not delete")
	}
	if v, ok := s.Get("new"); !ok || !bytes.Equal(v, []byte("n")) {
		t.Fatal("batch write missing")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestHashDeterministicAndOrderIndependent(t *testing.T) {
	a, b := New(), New()
	a.Put("x", []byte("1"))
	a.Put("y", []byte("2"))
	b.Put("y", []byte("2"))
	b.Put("x", []byte("1"))
	if a.Hash() != b.Hash() {
		t.Fatal("insertion order changed hash")
	}
	b.Put("x", []byte("9"))
	if a.Hash() == b.Hash() {
		t.Fatal("hash insensitive to value change")
	}
}

func TestHashDistinguishesKeyBoundaries(t *testing.T) {
	a, b := New(), New()
	a.Put("ab", []byte("c"))
	b.Put("a", []byte("bc"))
	if a.Hash() == b.Hash() {
		t.Fatal("length-prefixing failed: ab/c == a/bc")
	}
}

func TestClone(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	c := s.Clone()
	if c.Hash() != s.Hash() {
		t.Fatal("clone hash differs")
	}
	c.Put("a", []byte("2"))
	if v, _ := s.Get("a"); !bytes.Equal(v, []byte("1")) {
		t.Fatal("clone aliases original")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	s.Put("alpha", []byte("1"))
	s.Put("beta", []byte{0, 1, 2, 255})
	s.Put("empty", nil)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != s.Hash() {
		t.Fatal("snapshot round trip changed state")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("notadb!\x00\x00\x00\x00\x01"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Header claiming records that are not present.
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[11] = 9 // record count 9, but no records follow
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated record set accepted")
	}
}
