package massbft

// bench_test.go holds one testing.B benchmark per table/figure of the
// paper's evaluation. Benchmarks run reduced-scale configurations (fewer
// nodes, shorter virtual windows) so `go test -bench=.` completes in
// minutes; `cmd/massbft-bench` runs the full-scale regenerations whose
// numbers EXPERIMENTS.md records. Each benchmark reports the figure's
// headline metric via b.ReportMetric (tps, ms, KB/entry, ...) — wall-clock
// ns/op measures only the simulator, not the protocol.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// benchRun executes one configuration per b.N iteration and reports
// throughput and latency.
func benchRun(b *testing.B, cfg Config) Result {
	b.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = time.Second
	}
	var last Result
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = c.Run(4 * time.Second)
	}
	b.ReportMetric(last.Throughput, "tps")
	b.ReportMetric(float64(last.AvgLatency.Milliseconds()), "lat_ms")
	return last
}

// BenchmarkFig1bGeoBFTScaling: GeoBFT throughput vs group size (the leader
// bottleneck that motivates MassBFT).
func BenchmarkFig1bGeoBFTScaling(b *testing.B) {
	for _, n := range []int{4, 7, 13} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			benchRun(b, Config{Groups: []int{n, n, n}, Protocol: ProtocolGeoBFT, Workload: "ycsb-a"})
		})
	}
}

// BenchmarkFig2RoundVsAsyncOrdering: a fast group offered 2x the slow
// group's load; round ordering caps it, async ordering does not.
func BenchmarkFig2RoundVsAsyncOrdering(b *testing.B) {
	for _, p := range []Protocol{ProtocolBaseline, ProtocolMassBFT} {
		b.Run(string(p), func(b *testing.B) {
			benchRun(b, Config{
				Groups:    []int{4, 4},
				Protocol:  p,
				Workload:  "ycsb-a",
				MaxBatch:  50,
				GroupRate: []float64{1000, 2000},
			})
		})
	}
}

// BenchmarkFig8Nationwide: overall performance per protocol and workload on
// the nationwide latency matrix (Fig 8a-8d).
func BenchmarkFig8Nationwide(b *testing.B) {
	for _, w := range []string{"ycsb-a", "ycsb-b", "smallbank", "tpcc"} {
		for _, p := range []Protocol{ProtocolMassBFT, ProtocolBaseline, ProtocolGeoBFT, ProtocolISS, ProtocolSteward} {
			b.Run(w+"/"+string(p), func(b *testing.B) {
				res := benchRun(b, Config{Groups: []int{4, 4, 4}, Protocol: p, Workload: w})
				b.ReportMetric(res.AbortRate, "abort_rate")
			})
		}
	}
}

// BenchmarkFig9Worldwide: the same on the worldwide latency matrix.
func BenchmarkFig9Worldwide(b *testing.B) {
	for _, p := range []Protocol{ProtocolMassBFT, ProtocolBaseline, ProtocolGeoBFT, ProtocolISS, ProtocolSteward} {
		b.Run(string(p), func(b *testing.B) {
			benchRun(b, Config{Groups: []int{4, 4, 4}, Protocol: p, Workload: "ycsb-a", Latency: Worldwide})
		})
	}
}

// BenchmarkFig10ReplicationTraffic: WAN bytes per entry, MassBFT vs
// Baseline, at a fixed batch size.
func BenchmarkFig10ReplicationTraffic(b *testing.B) {
	for _, p := range []Protocol{ProtocolMassBFT, ProtocolBaseline} {
		b.Run(string(p), func(b *testing.B) {
			var kbPerEntry float64
			for i := 0; i < b.N; i++ {
				c, err := NewCluster(Config{
					Groups: []int{7, 7, 7}, Protocol: p, Workload: "ycsb-a",
					MaxBatch: 100, Seed: 42, Warmup: time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := c.Run(3 * time.Second)
				if res.Entries > 0 {
					kbPerEntry = float64(res.WANBytesTotal) / float64(res.Entries) / 1024
				}
			}
			b.ReportMetric(kbPerEntry, "KB/entry")
		})
	}
}

// BenchmarkFig11LatencyBreakdown: per-stage latency of the MassBFT pipeline,
// from the tracing subsystem's critical-path analysis (the per-stage values
// sum to the end-to-end critical-path window).
func BenchmarkFig11LatencyBreakdown(b *testing.B) {
	res := benchRun(b, Config{
		Groups: []int{4, 4, 4}, Protocol: ProtocolMassBFT, Workload: "ycsb-a",
		TracePath: filepath.Join(b.TempDir(), "fig11-trace.json"),
	})
	if res.Trace == nil {
		b.Fatal("tracing enabled but no trace report")
	}
	for _, s := range res.Trace.Stages {
		b.ReportMetric(float64(s.Avg.Microseconds()), s.Stage+"_us")
	}
	b.ReportMetric(float64(res.Trace.E2EAvg.Microseconds()), "critpath_e2e_us")
}

// BenchmarkFig12AblationLadder: Baseline -> BR -> EBR -> MassBFT on
// heterogeneous group sizes (4,7,7).
func BenchmarkFig12AblationLadder(b *testing.B) {
	for _, p := range []Protocol{ProtocolBaseline, ProtocolBR, ProtocolEBR, ProtocolMassBFT} {
		b.Run(string(p), func(b *testing.B) {
			benchRun(b, Config{Groups: []int{4, 7, 7}, Protocol: p, Workload: "ycsb-a"})
		})
	}
}

// BenchmarkFig13aNodeScaling: throughput scaling with nodes per group.
func BenchmarkFig13aNodeScaling(b *testing.B) {
	for _, n := range []int{4, 7, 16} {
		for _, p := range []Protocol{ProtocolMassBFT, ProtocolBaseline} {
			b.Run(fmt.Sprintf("nodes=%d/%s", n, p), func(b *testing.B) {
				benchRun(b, Config{Groups: []int{n, n, n}, Protocol: p, Workload: "ycsb-a"})
			})
		}
	}
}

// BenchmarkFig13bGroupScaling: throughput scaling with the number of groups.
func BenchmarkFig13bGroupScaling(b *testing.B) {
	for _, ng := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("groups=%d", ng), func(b *testing.B) {
			groups := make([]int, ng)
			for i := range groups {
				groups[i] = 4
			}
			benchRun(b, Config{Groups: groups, Protocol: ProtocolMassBFT, Workload: "ycsb-a"})
		})
	}
}

// BenchmarkFig14SlowNodes: MassBFT tolerating nodes with halved bandwidth.
func BenchmarkFig14SlowNodes(b *testing.B) {
	for _, slow := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("slow=%d", slow), func(b *testing.B) {
			var last Result
			for i := 0; i < b.N; i++ {
				c, err := NewCluster(Config{
					Groups: []int{7, 7, 7}, Protocol: ProtocolMassBFT, Workload: "ycsb-a",
					WANBandwidth: 40e6 / 8, Seed: 42, Warmup: time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				for g := 0; g < 3; g++ {
					for j := 0; j < slow; j++ {
						c.SetNodeBandwidth(g, j+1, 20e6/8)
					}
				}
				last = c.Run(4 * time.Second)
			}
			b.ReportMetric(last.Throughput, "tps")
		})
	}
}

// BenchmarkFig15FaultTimeline: throughput through Byzantine tampering and a
// group crash; reports the steady rates before and after.
func BenchmarkFig15FaultTimeline(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(Config{
			Groups: []int{4, 4, 4}, Protocol: ProtocolMassBFT, Workload: "ycsb-a",
			Seed: 42, Warmup: time.Second, TakeoverTimeout: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		c.MakeByzantine(3*time.Second, 1)
		c.CrashGroup(6*time.Second, 0)
		res := c.Run(10 * time.Second)
		before, after = 0, 0
		for _, p := range res.Series {
			if p.Second == 2 {
				before = p.Throughput
			}
			if p.Second == 9 {
				after = p.Throughput
			}
		}
	}
	b.ReportMetric(before, "tps_before")
	b.ReportMetric(after, "tps_after_crash")
}

// BenchmarkTableIIProtocolMatrix runs every protocol of Table II once at the
// same small scale — a smoke-level comparison of the full feature matrix.
func BenchmarkTableIIProtocolMatrix(b *testing.B) {
	for _, p := range Protocols() {
		b.Run(string(p), func(b *testing.B) {
			benchRun(b, Config{Groups: []int{4, 4, 4}, Protocol: p, Workload: "ycsb-a"})
		})
	}
}

// BenchmarkGatewayClientLoad measures the client gateway subsystem end to
// end on the emulator: closed-loop clients sign requests, submit through
// authenticated intake and adaptive batching, and collect f+1 signed reply
// certificates. certs_per_s is the client-visible committed rate (requests
// certified per virtual second, including warm-up — certificates are counted
// run-wide); tps the usual windowed executed-transaction rate.
func BenchmarkGatewayClientLoad(b *testing.B) {
	for _, clients := range []int{64, 256} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var last Result
			for i := 0; i < b.N; i++ {
				c, err := NewCluster(Config{
					Groups: []int{4, 4}, Protocol: ProtocolMassBFT, Workload: "ycsb-a",
					Seed: 42, Warmup: time.Second, GatewayClients: clients,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = c.Run(4 * time.Second)
				if last.ClientCommitted == 0 {
					b.Fatal("no client request earned a reply certificate")
				}
			}
			b.ReportMetric(float64(last.ClientCommitted)/4.0, "certs_per_s")
			b.ReportMetric(last.Throughput, "tps")
		})
	}
}
