package massbft

import (
	"net"
	"sync"
	"testing"
	"time"

	"massbft/internal/workload"
)

// gatewayTopology is a 2-group x 2-node loopback cluster with client
// gateways on every node and a registered client identity set.
func gatewayTopology(t *testing.T, clients int) *Topology {
	t.Helper()
	topo := testTopology(t)
	topo.Clients = clients
	topo.GroupRate = nil // gateway mode: load comes from clients, not leaders
	gws := make([]string, len(topo.Nodes))
	ls := make([]net.Listener, len(topo.Nodes))
	for i := range gws {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		gws[i] = l.Addr().String()
	}
	for _, l := range ls {
		l.Close()
	}
	for i := range topo.Nodes {
		topo.Nodes[i].Gateway = gws[i]
	}
	return topo
}

// TestTCPGatewayClientEndToEnd drives real closed-loop clients over TCP
// through the full external-client protocol: framed gateway connections,
// Ed25519 request intake through the parallel verification pool, leader
// forwarding, consensus, execution, and f+1 signed reply certificates
// collected by the public ClientPool/Client API.
func TestTCPGatewayClientEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	topo := gatewayTopology(t, 16)
	topo.RealCrypto = true // the whole point: authenticated intake for real
	nodes := make([]*ProcNode, 0, len(topo.Nodes))
	for _, na := range topo.Nodes {
		nodes = append(nodes, startTestNode(t, topo, na.Group, na.Index, false))
	}
	defer func() {
		for _, n := range nodes {
			n.Stop(0)
		}
	}()
	for _, n := range nodes {
		if n.GatewayAddr() == "" {
			t.Fatal("node started without its gateway listener")
		}
	}

	pool, err := DialClients(ClientPoolConfig{Topology: topo, First: 1, Count: 8, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const perClient = 3
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []struct {
			replies int
			err     error
		}
	)
	for id := uint64(1); id <= 8; id++ {
		cl, err := pool.Client(id)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.New(topo.Workload, topo.Seed+int64(id)*7919)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				res, err := cl.Submit(gen.Next(cl.ID()).Payload)
				mu.Lock()
				results = append(results, struct {
					replies int
					err     error
				}{res.Replies, err})
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()

	committed := 0
	for _, r := range results {
		if r.err != nil {
			t.Fatalf("client submit failed: %v", r.err)
		}
		if r.replies < 1 {
			t.Fatalf("certificate with %d replies", r.replies)
		}
		committed++
	}
	if committed != 8*perClient {
		t.Fatalf("committed %d of %d requests", committed, 8*perClient)
	}

	// The gateway pipeline's counters must show the real path was taken.
	st := waitStatus(t, nodes[0], 5*time.Second, "gateway counters", func(s NodeStatus) bool {
		return s.Counters["gateway-verified"] > 0 && s.Counters["gateway-executed"] > 0
	})
	if st.Counters["gateway-reply-sent"] == 0 {
		t.Fatalf("node (0,0) never routed a reply to a client connection: %v", st.Counters)
	}
	// Ledger prefix agreement across groups still holds under client load.
	var sts []NodeStatus
	for _, n := range nodes {
		s, err := n.Status()
		if err != nil {
			t.Fatal(err)
		}
		sts = append(sts, s)
	}
	for i := 1; i < len(sts); i++ {
		trailAgree(t, sts[0], sts[i])
	}
}
