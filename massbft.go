package massbft

import (
	"fmt"
	"io"
	"os"
	"time"

	"massbft/internal/cluster"
	"massbft/internal/core"
	"massbft/internal/forensics"
	"massbft/internal/keys"
	"massbft/internal/ledger"
	"massbft/internal/simnet"
	"massbft/internal/statedb"
	"massbft/internal/trace"
)

// Protocol selects which of the paper's evaluated protocols a cluster runs
// (Table II).
type Protocol string

// Supported protocols and ablations.
const (
	// ProtocolMassBFT is the paper's contribution: encoded bijective
	// replication + asynchronous VTS ordering.
	ProtocolMassBFT Protocol = "massbft"
	// ProtocolBaseline is the generic geo-consensus model of §II-A.
	ProtocolBaseline Protocol = "baseline"
	// ProtocolGeoBFT broadcasts directly without global consensus.
	ProtocolGeoBFT Protocol = "geobft"
	// ProtocolSteward serializes proposals across groups.
	ProtocolSteward Protocol = "steward"
	// ProtocolISS adds epoch barriers on top of Baseline.
	ProtocolISS Protocol = "iss"
	// ProtocolBR is the plain bijective replication ablation (Fig 12).
	ProtocolBR Protocol = "br"
	// ProtocolEBR is encoded bijective replication without async ordering
	// (Fig 12).
	ProtocolEBR Protocol = "ebr"
)

// Protocols lists all supported protocol names.
func Protocols() []Protocol {
	return []Protocol{ProtocolMassBFT, ProtocolBaseline, ProtocolGeoBFT,
		ProtocolSteward, ProtocolISS, ProtocolBR, ProtocolEBR}
}

// options maps a Protocol to the core node's mode switches.
func (p Protocol) options(epoch time.Duration) (cluster.Options, error) {
	switch p {
	case ProtocolMassBFT, "":
		return cluster.PresetMassBFT(), nil
	case ProtocolBaseline:
		return cluster.PresetBaseline(), nil
	case ProtocolGeoBFT:
		return cluster.PresetGeoBFT(), nil
	case ProtocolSteward:
		return cluster.PresetSteward(), nil
	case ProtocolISS:
		if epoch == 0 {
			epoch = 100 * time.Millisecond // the paper's 0.1 s epochs
		}
		return cluster.PresetISS(epoch), nil
	case ProtocolBR:
		return cluster.PresetBR(), nil
	case ProtocolEBR:
		return cluster.PresetEBR(), nil
	}
	return cluster.Options{}, fmt.Errorf("massbft: unknown protocol %q", p)
}

// LatencyModel gives the one-way WAN latency between two groups.
type LatencyModel func(fromGroup, toGroup int) time.Duration

// Nationwide is the paper's nationwide Aliyun cluster latency matrix
// (RTTs 26.7-43.4 ms).
func Nationwide(i, j int) time.Duration { return cluster.NationwideLatency(i, j) }

// Worldwide is the paper's worldwide cluster latency matrix
// (RTTs 156-206 ms).
func Worldwide(i, j int) time.Duration { return cluster.WorldwideLatency(i, j) }

// Config configures a cluster. Zero values select the paper's defaults
// (nationwide latencies, 20 Mbps WAN per node, 20 ms batch timeout).
type Config struct {
	// Groups lists the node count per group (data center); e.g. {7,7,7}.
	Groups []int
	// Protocol selects the consensus protocol (default ProtocolMassBFT).
	Protocol Protocol
	// Workload is a built-in workload name ("ycsb-a", "ycsb-b",
	// "smallbank", "tpcc"); ignored when Custom is set.
	Workload string
	// Custom plugs in application-defined transactions (see CustomWorkload).
	Custom CustomWorkload
	// Seed drives all randomness; equal seeds give bit-identical runs.
	Seed int64
	// Transport selects the message fabric. NewCluster runs on the
	// deterministic in-process emulator (TransportSim, the default — the
	// only fabric where Run's virtual time is meaningful). To run over
	// real sockets (TransportTCP), deploy one process per node with
	// StartNode or cmd/massbft-node instead.
	Transport TransportKind

	// Latency is the WAN latency model (default Nationwide). WANBandwidth
	// and LANBandwidth are per-node bytes/second.
	Latency      LatencyModel
	LANLatency   time.Duration
	WANBandwidth float64
	LANBandwidth float64
	// Globe replaces the named latency models with a procedurally generated
	// planet-scale geometry: every group becomes a region placed on a sphere
	// (seeded from Seed), one-way latencies follow great-circle fiber
	// distance (RTTs span roughly 10-380 ms at 50 regions, bracketing both
	// named models), and — unless WANBandwidth is set — regions cycle
	// through 1 Gbps / 100 Mbps / 20 Mbps bandwidth tiers. This is the
	// geometry for scaling the region count past the named models' envelope;
	// an explicit Latency model takes precedence.
	Globe bool

	// BatchTimeout, MaxBatch, and PipelineDepth control the proposers.
	BatchTimeout  time.Duration
	MaxBatch      int
	PipelineDepth int
	// GroupRate throttles per-group offered load in transactions/second
	// (zero = saturation).
	GroupRate []float64
	// GatewayClients, when > 0, switches the cluster to gateway-driven
	// load: that many simulated closed-loop clients sign requests, submit
	// them through each node's client gateway (authenticated intake,
	// adaptive batching, admission control), and collect f+1 signed reply
	// certificates. Leaders then propose only what clients submitted,
	// instead of self-generating the synthetic workload. See Result's
	// Client* fields for the client-side outcome.
	GatewayClients int
	// EpochLength applies to ProtocolISS only.
	EpochLength time.Duration

	// Warmup excludes the run's first phase from aggregate metrics.
	Warmup time.Duration
	// RealCrypto verifies every Ed25519 signature for real instead of
	// charging the calibrated CPU cost model (slower; used by tests).
	RealCrypto bool
	// SerialVTS selects the serial (3-RTT) vector-timestamp assignment of
	// Fig 7a instead of the overlapped (2-RTT) default of Fig 7b; only
	// meaningful for ProtocolMassBFT (the §V-B ablation).
	SerialVTS bool
	// ViewChangeTimeout enables local leader replacement; TakeoverTimeout
	// enables the quorum-witnessed group failover (§V-C): observing groups
	// certify GroupSuspect attestations after SuspectTimeout of stream
	// silence, and a Byzantine quorum of suspicions lets the designated
	// successor certify the GroupDead decision that unlocks takeover.
	ViewChangeTimeout time.Duration
	TakeoverTimeout   time.Duration
	// SuspectTimeout is how long a group's record stream must stay silent
	// before other groups certify a suspicion (default 4x TakeoverTimeout).
	SuspectTimeout time.Duration

	// RepairTimeout arms the recovery scans (chunk-gap repair, entry fetch
	// retry with peer rotation, stream-gap repair); zero disables them.
	RepairTimeout time.Duration
	// CheckpointInterval is how often nodes fold a rejoin checkpoint
	// (ledger height + state + orderer clocks); zero disables periodic
	// checkpoints, though a rejoining node still gets a fresh fold on
	// demand.
	CheckpointInterval time.Duration
	// RejoinTimeout bounds one state-transfer attempt of a recovering node
	// before it retries another group peer.
	RejoinTimeout time.Duration

	// Fault injection (deterministic, seeded from Seed): per-message WAN
	// and LAN drop/duplicate probabilities plus extra latency jitter,
	// applied by the network fault layer. All zero disables the layer
	// entirely, keeping fault-free runs bit-identical across versions.
	WANDropRate float64
	WANDupRate  float64
	LANDropRate float64
	LANDupRate  float64
	FaultJitter float64

	// StandbyGroups marks the highest-numbered groups of Groups as
	// provisioned but inactive at genesis: they hold keys and addresses but
	// no state, propose nothing, and do not count toward record quorums.
	// A standby group enters the cluster only through a certified epoch
	// reconfiguration (Reconfigure with ReconfigJoin): it bootstraps state
	// from the active groups, a Byzantine quorum of active groups certifies
	// the join, and every node switches epochs at the identical certified
	// boundary. Requires TakeoverTimeout > 0 and a protocol with global
	// consensus and per-seq commit records (MassBFT, Baseline, BR, EBR).
	StandbyGroups int
	// ResubmitJitter stretches gateway clients' resubmission backoff by a
	// deterministic per-(client, nonce, attempt) factor of up to +25%, so
	// clients that timed out together do not retry in lockstep. Off by
	// default to keep existing benchmark runs bit-identical.
	ResubmitJitter bool

	// TracePath, when non-empty, enables per-entry lifecycle tracing and
	// writes a Chrome trace-event JSON file (loadable in Perfetto or
	// chrome://tracing) there after every Run. Tracing is purely passive:
	// a traced run commits the bit-identical ledger and state hashes of an
	// untraced one. See Result.Trace for the critical-path analysis.
	TracePath string
}

// Cluster is a running (or runnable) consensus deployment.
type Cluster struct {
	inner     *cluster.Cluster
	ran       time.Duration
	tracePath string
	traceErr  error
}

// NewCluster validates cfg and wires the deployment.
func NewCluster(cfg Config) (*Cluster, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("massbft: Config.Groups must list at least one group")
	}
	for g, n := range cfg.Groups {
		if n < 1 {
			return nil, fmt.Errorf("massbft: group %d has invalid size %d", g, n)
		}
	}
	switch cfg.Transport {
	case "", TransportSim:
	case TransportTCP:
		return nil, fmt.Errorf("massbft: TransportTCP runs one process per node — use StartNode (or cmd/massbft-node), not NewCluster")
	default:
		return nil, fmt.Errorf("massbft: unknown transport %q", cfg.Transport)
	}
	opts, err := cfg.Protocol.options(cfg.EpochLength)
	if err != nil {
		return nil, err
	}
	if cfg.SerialVTS {
		opts.OverlapVTS = false
	}
	if cfg.StandbyGroups > 0 {
		// Dynamic membership rides on the failover machinery (standby groups
		// are fenced exactly like certified-dead ones until their join) and
		// on per-seq commit records (the certified join boundary is derived
		// from the commit watermark). GeoBFT has no global records at all,
		// and Steward/ISS proposal gates cannot tolerate skipped rounds.
		if cfg.StandbyGroups > len(cfg.Groups)-2 {
			return nil, fmt.Errorf("massbft: StandbyGroups=%d leaves fewer than two active groups", cfg.StandbyGroups)
		}
		if cfg.TakeoverTimeout <= 0 {
			return nil, fmt.Errorf("massbft: StandbyGroups requires TakeoverTimeout > 0")
		}
		if !opts.GlobalConsensus || opts.Serial || opts.EpochLength > 0 {
			return nil, fmt.Errorf("massbft: StandbyGroups is not supported by protocol %q", cfg.Protocol)
		}
	}
	var lat func(i, j int) time.Duration
	if cfg.Latency != nil {
		lat = func(i, j int) time.Duration { return cfg.Latency(i, j) }
	}
	var topo *simnet.Topology
	if cfg.Globe && cfg.Latency == nil {
		topo = simnet.GlobeTopology(len(cfg.Groups), cfg.Seed)
		if cfg.WANBandwidth == 0 {
			topo.BandwidthTiers(1e9/8, 100e6/8, 20e6/8)
		}
	}
	inner := cluster.Config{
		GroupSizes:        cfg.Groups,
		Opts:              opts,
		Workload:          cfg.Workload,
		Seed:              cfg.Seed,
		WANLatency:        lat,
		Topology:          topo,
		LANLatency:        cfg.LANLatency,
		WANBandwidth:      cfg.WANBandwidth,
		LANBandwidth:      cfg.LANBandwidth,
		BatchTimeout:      cfg.BatchTimeout,
		MaxBatch:          cfg.MaxBatch,
		PipelineDepth:     cfg.PipelineDepth,
		GroupRate:         cfg.GroupRate,
		TrustAll:          !cfg.RealCrypto,
		Gateway: cluster.GatewayConfig{
			Enabled:        cfg.GatewayClients > 0,
			SimClients:     cfg.GatewayClients,
			ResubmitJitter: cfg.ResubmitJitter,
		},
		StandbyGroups: cfg.StandbyGroups,
		Warmup:            cfg.Warmup,
		ViewChangeTimeout: cfg.ViewChangeTimeout,
		TakeoverTimeout:   cfg.TakeoverTimeout,
		SuspectTimeout:    cfg.SuspectTimeout,

		RepairTimeout:      cfg.RepairTimeout,
		CheckpointInterval: cfg.CheckpointInterval,
		RejoinTimeout:      cfg.RejoinTimeout,
		WANDropRate:        cfg.WANDropRate,
		WANDupRate:         cfg.WANDupRate,
		LANDropRate:        cfg.LANDropRate,
		LANDupRate:         cfg.LANDupRate,
		FaultJitter:        cfg.FaultJitter,
		TraceEnabled:       cfg.TracePath != "",
	}
	if cfg.Custom != nil {
		registerCustom(&inner, cfg.Custom, cfg.Seed)
	}
	c, err := cluster.New(inner, core.NewNode)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c, tracePath: cfg.TracePath}, nil
}

// Run advances the cluster by d of virtual time and returns the cumulative
// results. It can be called repeatedly to continue the same run.
func (c *Cluster) Run(d time.Duration) Result {
	c.ran += d
	// The metrics window covers everything after warm-up up to the current
	// end of run.
	c.inner.Metrics.SetWindow(c.inner.Cfg.Warmup, c.ran)
	c.inner.Cfg.RunFor = c.ran
	c.inner.RunUntil(c.ran)
	c.writeTrace()
	return c.result()
}

// writeTrace exports the accumulated spans as Chrome trace-event JSON to
// Config.TracePath, overwriting on each Run so the file always reflects the
// whole run so far.
func (c *Cluster) writeTrace() {
	if c.tracePath == "" || c.inner.Trace == nil {
		return
	}
	f, err := os.Create(c.tracePath)
	if err != nil {
		c.traceErr = err
		return
	}
	err = trace.WriteChrome(f, c.inner.Trace.Spans(), c.inner.Cfg.GroupSizes)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	c.traceErr = err
}

// TraceError reports the most recent trace-export failure (nil when tracing
// is off or the last export succeeded).
func (c *Cluster) TraceError() error { return c.traceErr }

// Drain stops client load and runs d more virtual time so every in-flight
// entry executes on every live node; call before comparing StateHash across
// nodes. Further Run calls continue in drained mode.
func (c *Cluster) Drain(d time.Duration) {
	c.ran += d
	c.inner.Drain(d)
	c.writeTrace()
}

// CrashGroup schedules a full data-center outage at virtual time `at`.
func (c *Cluster) CrashGroup(at time.Duration, group int) {
	c.inner.ScheduleGroupCrash(at, group)
}

// MakeByzantine schedules `perGroup` nodes of every group to start
// replicating tampered entries at virtual time `at` (§VI-E).
func (c *Cluster) MakeByzantine(at time.Duration, perGroup int) {
	c.inner.ScheduleByzantine(at, perGroup)
}

// PartitionWAN severs all traffic between groups a and b from virtual time
// `at` until `healAt` (0 = never heals). Both directions drop; the failover
// protocol guarantees at most one certified GroupDead decision can form
// regardless of which side the successor lands on.
func (c *Cluster) PartitionWAN(at, healAt time.Duration, a, b int) {
	c.inner.SchedulePartition(at, healAt, a, b)
}

// Reconfiguration operations for Cluster.Reconfigure / ProcNode.Reconfigure.
const (
	// ReconfigJoin admits a standby group (see Config.StandbyGroups).
	ReconfigJoin = cluster.ReconfigJoin
	// ReconfigLeave removes an active group behind a certified cut.
	ReconfigLeave = cluster.ReconfigLeave
)

// Reconfigure delivers an administrative membership trigger to every live
// node at virtual time `at`: op ReconfigJoin admits standby group `group`
// (it bootstraps state from the active groups first), op ReconfigLeave
// drains and removes active group `group`. The trigger is only intent —
// membership changes exactly when a Byzantine quorum of member groups has
// certified approval records and the target group's successor certifies the
// epoch switch, so lost or duplicated triggers are harmless.
func (c *Cluster) Reconfigure(at time.Duration, op byte, group int) {
	c.inner.ScheduleReconfigure(at, op, group)
}

// Epoch reports the observer node's certified membership view: the epoch
// counter (number of certified reconfigurations applied) and the sorted
// member groups of the current epoch.
func (c *Cluster) Epoch() (uint64, []int) {
	if n, ok := c.inner.Nodes[c.inner.Cfg.Observer].(interface {
		EpochInfo() (uint64, []int)
	}); ok {
		return n.EpochInfo()
	}
	return 0, nil
}

// CrashNode kills a single node at virtual time `at`.
func (c *Cluster) CrashNode(at time.Duration, group, index int) {
	c.inner.ScheduleNodeCrash(at, keys.NodeID{Group: group, Index: index})
}

// RecoverNode revives a crashed node at virtual time `at`. The node comes
// back with its in-memory state wiped and immediately starts the
// checkpointed-rejoin protocol: it fetches a state checkpoint from a LAN
// peer, installs it, and catches up via the normal repair paths.
func (c *Cluster) RecoverNode(at time.Duration, group, index int) {
	c.inner.ScheduleNodeRecover(at, keys.NodeID{Group: group, Index: index})
}

// Counter reads one internal diagnostic counter (e.g. "net-dropped",
// "chunk-repairs", "fetch-retries", "state-transfers"); zero for unknown
// names. Useful to confirm that fault injection and recovery actually
// engaged during a run.
func (c *Cluster) Counter(name string) int64 {
	return c.inner.Metrics.Counter(name)
}

// SetNodeBandwidth overrides one node's WAN bandwidth (bytes/second), the
// Fig 14 heterogeneous-bandwidth experiment.
func (c *Cluster) SetNodeBandwidth(group, index int, bytesPerSec float64) {
	c.inner.Net.SetNodeBandwidth(keys.NodeID{Group: group, Index: index}, bytesPerSec)
}

// StateHash returns the deterministic state digest of one node; equal hashes
// across nodes certify agreement.
func (c *Cluster) StateHash(group, index int) [32]byte {
	return c.inner.StateHash(keys.NodeID{Group: group, Index: index})
}

// LedgerInfo describes one node's copy of the global hash-chained ledger.
type LedgerInfo struct {
	// Height is the number of sealed blocks.
	Height uint64
	// Head is the latest block hash; two nodes with equal heads hold
	// identical ledgers (and therefore executed identical prefixes).
	Head [32]byte
}

// Checkpoint writes one node's durable artifacts — the state snapshot and
// the hash-chained ledger — to the given writers, e.g. for restart or
// state transfer to a lagging peer.
func (c *Cluster) Checkpoint(group, index int, state, chain io.Writer) error {
	id := keys.NodeID{Group: group, Index: index}
	n, ok := c.inner.Nodes[id].(interface {
		DB() *statedb.Store
		Ledger() *ledger.Ledger
	})
	if !ok {
		return fmt.Errorf("massbft: node %v has no checkpointable state", id)
	}
	if err := n.DB().Save(state); err != nil {
		return err
	}
	return n.Ledger().Save(chain)
}

// AgreementVerdict classifies end-of-run (dis)agreement across replicas.
type AgreementVerdict string

const (
	// AgreementConverged: every live node holds an identical ledger and
	// state digest.
	AgreementConverged AgreementVerdict = AgreementVerdict(forensics.Converged)
	// AgreementWedged: all live ledgers agree block-for-block on their
	// common prefix, but at least one node stopped short of the longest
	// chain — a liveness gap. Draining longer may heal it; a reproducible
	// wedge is a recovery-path bug.
	AgreementWedged AgreementVerdict = AgreementVerdict(forensics.Wedged)
	// AgreementForked: two live nodes sealed different blocks at the same
	// height — a safety violation. No amount of draining can heal a fork.
	AgreementForked AgreementVerdict = AgreementVerdict(forensics.Forked)
)

// NodeAgreement is one node's entry in an AgreementReport census.
type NodeAgreement struct {
	Group, Index int
	// Live is false for crashed nodes; they are reported but never judged.
	Live   bool
	Height uint64
	Head   [32]byte
	State  [32]byte
	// Behind is the gap to the tallest live ledger (0 at the frontier).
	Behind uint64
}

// ForkBranch is one side of a fork: the block sealed at the first divergent
// height, its commit provenance, and the nodes holding it.
type ForkBranch struct {
	Hash [32]byte
	// EntryGroup/EntrySeq identify the consensus entry the divergent block
	// seals — the starting point for root-causing the safety violation.
	EntryGroup int
	EntrySeq   uint64
	Holders    []NodeAgreement
}

// AgreementReport is the classified outcome of an agreement check (see
// Cluster.AgreementReport).
type AgreementReport struct {
	Verdict AgreementVerdict
	// FirstDivergentHeight is the lowest height at which live ledgers
	// disagree: for Forked, the bisected height where different blocks were
	// sealed; for Wedged, the first height missing on the shortest ledger.
	// Zero when converged.
	FirstDivergentHeight uint64
	// MinHeight and MaxHeight span the live nodes' sealed heights.
	MinHeight, MaxHeight uint64
	// Branches holds the conflicting blocks (Forked only).
	Branches []ForkBranch
	// Laggards lists live nodes behind MaxHeight (Wedged only), furthest
	// behind first.
	Laggards []NodeAgreement
	// Nodes is the full census, crashed nodes included.
	Nodes []NodeAgreement

	rendered string
}

// String renders the verdict as a one-paragraph summary for logs.
func (r AgreementReport) String() string { return r.rendered }

// AgreementReport drains nothing and judges the cluster as it stands:
// per-node ledger prefix walks classify the run as converged, wedged
// (liveness gap: identical prefixes, some node behind), or forked (safety
// violation: different blocks at the same height, located by bisection).
// Call after Drain, or use DrainToAgreement for the common
// drain-until-converged loop. Each call also updates the
// "forked-detected"/"wedged-detected"/"agreement-first-div-height" counters
// (see Counter).
func (c *Cluster) AgreementReport() AgreementReport {
	return convertReport(c.inner.AgreementReport(nil))
}

// DrainToAgreement repeatedly drains in `step` increments (default 500ms)
// until the live nodes converge, a fork is detected (forks never heal, so
// waiting is pointless), or `budget` of virtual time elapses; it returns the
// final classified report. This is the principled version of "drain a while
// and compare state hashes": a wedge that outlasts the budget reports
// which nodes are behind and from what height, instead of a bare mismatch.
func (c *Cluster) DrainToAgreement(step, budget time.Duration) AgreementReport {
	if step <= 0 {
		step = 500 * time.Millisecond
	}
	var rep AgreementReport
	for spent := time.Duration(0); ; {
		c.Drain(step)
		spent += step
		rep = c.AgreementReport()
		if rep.Verdict != AgreementWedged || spent+step > budget {
			return rep
		}
	}
}

func convertReport(rep forensics.Report) AgreementReport {
	conv := func(st forensics.NodeStatus) NodeAgreement {
		return NodeAgreement{
			Group: st.ID.Group, Index: st.ID.Index, Live: st.Live,
			Height: st.Height, Head: st.Head, State: st.State, Behind: st.Behind,
		}
	}
	out := AgreementReport{
		Verdict:              AgreementVerdict(rep.Verdict),
		FirstDivergentHeight: rep.FirstDivergentHeight,
		MinHeight:            rep.MinHeight,
		MaxHeight:            rep.MaxHeight,
		rendered:             rep.String(),
	}
	byID := map[keys.NodeID]NodeAgreement{}
	for _, st := range rep.Nodes {
		na := conv(st)
		byID[st.ID] = na
		out.Nodes = append(out.Nodes, na)
	}
	for _, st := range rep.Laggards {
		out.Laggards = append(out.Laggards, conv(st))
	}
	for _, br := range rep.Branches {
		fb := ForkBranch{Hash: br.Hash, EntryGroup: br.Entry.GID, EntrySeq: br.Entry.Seq}
		for _, id := range br.Holders {
			fb.Holders = append(fb.Holders, byID[id])
		}
		out.Branches = append(out.Branches, fb)
	}
	return out
}

// Ledger returns one node's ledger head; use it to assert that replicas
// sealed the same chain of executed entries.
func (c *Cluster) Ledger(group, index int) LedgerInfo {
	type ledgered interface {
		Ledger() *ledger.Ledger
	}
	n := c.inner.Nodes[keys.NodeID{Group: group, Index: index}]
	if ln, ok := n.(ledgered); ok {
		l := ln.Ledger()
		return LedgerInfo{Height: l.Height(), Head: l.Head()}
	}
	return LedgerInfo{}
}

func (c *Cluster) result() Result {
	m := c.inner.Metrics
	pts := m.Series()
	series := make([]SeriesPoint, len(pts))
	for i, p := range pts {
		series[i] = SeriesPoint{Second: p.Second, Throughput: p.Throughput, AvgLatency: p.AvgLatency}
	}
	res := Result{
		Throughput:      m.Throughput(),
		Committed:       m.Committed(),
		Aborted:         m.Aborted(),
		AbortRate:       m.AbortRate(),
		Entries:         m.Entries(),
		AvgLatency:      m.AvgLatency(),
		P50Latency:      m.PercentileLatency(50),
		P99Latency:      m.PercentileLatency(99),
		WANBytesPerNode: float64(c.inner.Net.WANBytes(-1)) / float64(totalNodes(c.inner.Cfg.GroupSizes)),
		WANBytesTotal:   c.inner.Net.WANBytes(-1),
		Stages:          m.StageBreakdown(),
		Series:          series,
	}
	if hub := c.inner.Hub(); hub != nil {
		res.ClientCommitted = hub.Committed
		res.ClientResubmits = hub.Resubmits
		res.ClientGaveUp = hub.GaveUp
	}
	if c.inner.Trace != nil {
		rep := trace.Analyze(c.inner.Trace.Spans(), c.inner.Cfg.Observer)
		tr := &TraceReport{
			Entries: len(rep.Entries),
			Spans:   c.inner.Trace.Len(),
			Dropped: c.inner.Trace.Dropped(),
			E2EAvg:  rep.E2EAvg,
		}
		if len(rep.Stages) > 0 {
			tr.Dominant = rep.Stages[0].Stage
		}
		res.Stages = make(map[string]time.Duration, len(rep.Stages))
		for _, s := range rep.Stages {
			tr.Stages = append(tr.Stages, TraceStage{Stage: s.Stage, Total: s.Total, Avg: s.Avg, Share: s.Share})
			res.Stages[s.Stage] = s.Avg
		}
		res.Trace = tr
	}
	return res
}

func totalNodes(groups []int) int {
	n := 0
	for _, g := range groups {
		n += g
	}
	return n
}

// Result summarizes a run.
type Result struct {
	// Throughput is committed transactions per second over the measurement
	// window.
	Throughput float64
	// Committed / Aborted count transactions; AbortRate is the §VI-A
	// conflict-abort fraction.
	Committed, Aborted int64
	AbortRate          float64
	// Entries is the number of executed log entries.
	Entries int64
	// Latencies are end-to-end: proposal to execution.
	AvgLatency, P50Latency, P99Latency time.Duration
	// WAN traffic accounting (Fig 10).
	WANBytesPerNode float64
	WANBytesTotal   int64
	// Stages is the per-stage average latency breakdown (Fig 11), derived
	// from the trace subsystem's critical-path analysis: each entry's
	// end-to-end window is partitioned exactly among its pipeline stages, so
	// the per-stage averages sum to the average end-to-end latency. Populated
	// only when Config.TracePath enables tracing.
	Stages map[string]time.Duration
	// Series is the per-second throughput/latency trace (Fig 15).
	Series []SeriesPoint
	// Trace is the critical-path summary of the traced run; nil when tracing
	// is off (Config.TracePath empty).
	Trace *TraceReport
	// Client-side outcome of a gateway-driven run (Config.GatewayClients):
	// requests that earned f+1 reply certificates, cross-group timeout
	// resubmissions, and abandoned requests. All zero when the gateway is
	// off.
	ClientCommitted, ClientResubmits, ClientGaveUp int64
}

// TraceReport summarizes the per-entry critical-path analysis of a traced
// run, computed from the vantage of the metrics observer node.
type TraceReport struct {
	// Entries is the number of entries whose full propose→execute path was
	// observed; Spans the total spans recorded cluster-wide; Dropped how many
	// spans the recorder's cap discarded (0 in any reasonably sized run).
	Entries int
	Spans   int
	Dropped int64
	// Dominant is the stage contributing the most critical-path time.
	Dominant string
	// E2EAvg is the average end-to-end (propose→execute) critical-path
	// window; the per-stage Avgs below sum to it.
	E2EAvg time.Duration
	// Stages is sorted by total critical-path contribution, largest first.
	Stages []TraceStage
}

// TraceStage is one pipeline stage's aggregate critical-path contribution.
type TraceStage struct {
	Stage string
	// Total is the stage's summed critical-path time across entries; Avg the
	// per-entry average (Total / entries); Share the fraction of all
	// critical-path time.
	Total, Avg time.Duration
	Share      float64
}

// SeriesPoint is one second of a run's trace.
type SeriesPoint struct {
	Second     int
	Throughput float64
	AvgLatency time.Duration
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("throughput=%.0f tps avg-latency=%v p50=%v entries=%d abort-rate=%.3f",
		r.Throughput, r.AvgLatency.Round(time.Millisecond), r.P50Latency.Round(time.Millisecond),
		r.Entries, r.AbortRate)
}
