// Package massbft is a from-scratch Go implementation of MassBFT (Peng et
// al., ICDE 2025): a geo-distributed Byzantine fault-tolerant consensus
// protocol that combines encoded bijective log replication (erasure-coded
// chunk transfer over every node's WAN link, §IV) with asynchronous log
// ordering by vector timestamps (§V).
//
// The package exposes a deterministic simulation testbed: a cluster of
// groups (data centers) of nodes wired over an emulated WAN/LAN (per-node
// bandwidth limits, inter-region latency matrices), running the full
// protocol stack — local PBFT consensus, erasure-coded global replication
// with Merkle-authenticated optimistic rebuild, vector-timestamp ordering,
// and Aria-style deterministic execution. The same stack also runs the
// paper's competitor protocols (Baseline, GeoBFT, Steward, ISS) and ablations
// (BR, EBR), selected by Config.Protocol.
//
// # Quick start
//
//	cfg := massbft.Config{
//		Groups:   []int{4, 4, 4},
//		Protocol: massbft.ProtocolMassBFT,
//		Workload: "ycsb-a",
//	}
//	c, err := massbft.NewCluster(cfg)
//	if err != nil { ... }
//	res := c.Run(10 * time.Second)
//	fmt.Printf("throughput: %.0f tps, latency: %v\n", res.Throughput, res.AvgLatency)
//
// Applications with their own transaction semantics implement
// CustomWorkload; see examples/bank for a SmallBank-style ledger and
// examples/geoledger for fault injection.
package massbft
