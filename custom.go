package massbft

import (
	"math/rand"

	"massbft/internal/aria"
	"massbft/internal/cluster"
	"massbft/internal/statedb"
	"massbft/internal/types"
	"massbft/internal/workload"
)

// Snapshot is the read view a custom transaction executes against.
type Snapshot interface {
	// Get returns the value stored under key, if any.
	Get(key string) ([]byte, bool)
}

// CustomWorkload plugs application-defined transactions into the consensus
// stack. Generation runs at the group leaders; Execute runs deterministically
// on every node in the agreed global order, under Aria concurrency control
// (conflicting transactions within a batch are deterministically aborted and
// reported in Result.Aborted).
//
// Execute must be a pure function of (snapshot, payload): any
// non-determinism would fork the replicas' states.
type CustomWorkload interface {
	// Name labels the workload.
	Name() string
	// Next produces the next transaction payload for a client of the given
	// group. It is called by that group's leader only.
	Next(group int, client uint64) []byte
	// Execute interprets one payload: it returns the keys read, the buffered
	// writes (nil value deletes), whether the transaction's own logic aborts,
	// and an error only for malformed payloads.
	Execute(s Snapshot, payload []byte) (reads []string, writes map[string][]byte, abort bool, err error)
	// Load seeds the initial state; may be a no-op.
	Load(put func(key string, value []byte))
}

// customAdapter bridges CustomWorkload to the internal workload interface.
type customAdapter struct {
	cw    CustomWorkload
	group int
	rng   *rand.Rand
}

// Name implements workload.Workload.
func (a *customAdapter) Name() string { return a.cw.Name() }

// Load implements workload.Workload.
func (a *customAdapter) Load(db *statedb.Store) {
	a.cw.Load(func(k string, v []byte) { db.Put(k, append([]byte(nil), v...)) })
}

// Next implements workload.Workload.
func (a *customAdapter) Next(client uint64) types.Transaction {
	sig := make([]byte, 64)
	a.rng.Read(sig)
	return types.Transaction{
		Client:  client,
		Nonce:   a.rng.Uint64(),
		Payload: a.cw.Next(a.group, client),
		Sig:     sig,
	}
}

// Executor implements workload.Workload.
func (a *customAdapter) Executor() aria.Executor {
	return func(snap aria.Snapshot, tx *types.Transaction) ([]string, map[string][]byte, bool, error) {
		return a.cw.Execute(snap, tx.Payload)
	}
}

func registerCustom(cfg *cluster.Config, cw CustomWorkload, seed int64) {
	cfg.WorkloadFactory = func(group int, groupSeed int64) workload.Workload {
		return &customAdapter{cw: cw, group: group, rng: rand.New(rand.NewSource(groupSeed))}
	}
	cfg.Workload = cw.Name()
}
