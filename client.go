package massbft

// The client library for multi-process deployments: ClientPool multiplexes
// many logical clients over one framed TCP connection per gateway node, and
// Client is one closed-loop submitter on top of it.
//
// A Submit round-trips the paper's external-client protocol: sign the
// request with the client's Ed25519 key, send it to one node of the target
// group (which forwards to its local leader), and wait for f+1 signed
// replies from distinct group nodes matching on (GID, Height, Result) — the
// certificate that at least one honest node executed the request at that
// position. On timeout the client rotates to the next group and broadcasts
// (retransmissions need every reachable member: cached dedup-window replies
// come only from nodes that saw the request). Per-client nonces plus each
// gateway's dedup window make the retries idempotent.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"massbft/internal/cluster"
	"massbft/internal/gateway"
	"massbft/internal/keys"
	"massbft/internal/transport"
	"massbft/internal/types"
)

// Client-side errors.
var (
	// ErrGaveUp: the request exhausted its submission attempts without
	// collecting a reply certificate.
	ErrGaveUp = errors.New("massbft: request gave up after max attempts")
	// ErrPoolClosed: the owning ClientPool was closed.
	ErrPoolClosed = errors.New("massbft: client pool closed")
)

// ClientPoolConfig parameterizes DialClients.
type ClientPoolConfig struct {
	// Topology locates gateway addresses and derives all key material.
	Topology *Topology
	// First and Count select the logical client IDs [First, First+Count)
	// this pool serves; IDs are 1-based and must lie within
	// Topology.Clients. Count 0 means all registered clients.
	First, Count uint64
	// Timeout is one attempt's reply-certificate deadline (default 1s);
	// attempts back off exponentially from it.
	Timeout time.Duration
	// MaxAttempts bounds submission attempts per request (0 = 2x groups).
	MaxAttempts int
}

// ClientPool holds the shared gateway connections and key material for a
// range of logical clients. Safe for concurrent use by its Clients.
type ClientPool struct {
	cfg  ClientPoolConfig
	topo *Topology
	reg  *keys.Registry
	cks  map[uint64]*keys.ClientKey

	mu     sync.Mutex
	conns  map[keys.NodeID]*cpConn
	inbox  map[uint64]chan gateway.Reply
	closed bool
	done   chan struct{}
}

// cpConn is one live gateway connection (client side).
type cpConn struct {
	c  net.Conn
	wm sync.Mutex // serializes writes from concurrent clients
}

// DialClients builds a client pool. Connections are dialed lazily per
// gateway node on first use, and redialed after failures, so a pool survives
// node crashes as long as f+1 members of some group stay reachable.
func DialClients(cfg ClientPoolConfig) (*ClientPool, error) {
	topo := cfg.Topology
	if topo == nil {
		return nil, fmt.Errorf("massbft: ClientPoolConfig.Topology is required")
	}
	if err := topo.validate(); err != nil {
		return nil, fmt.Errorf("massbft: %w", err)
	}
	if topo.Clients <= 0 {
		return nil, fmt.Errorf("massbft: topology registers no clients (set \"clients\")")
	}
	if cfg.First == 0 {
		cfg.First = 1
	}
	if cfg.Count == 0 {
		cfg.Count = uint64(topo.Clients) - cfg.First + 1
	}
	if cfg.First+cfg.Count-1 > uint64(topo.Clients) {
		return nil, fmt.Errorf("massbft: client range [%d,%d) exceeds the %d registered clients",
			cfg.First, cfg.First+cfg.Count, topo.Clients)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	cks, _, err := keys.GenerateClients(topo.Clients, topo.Seed)
	if err != nil {
		return nil, err
	}
	_, reg, err := keys.GenerateCluster(topo.Groups, topo.Seed)
	if err != nil {
		return nil, err
	}
	reg.SetTrustAll(!topo.RealCrypto)
	p := &ClientPool{
		cfg:   cfg,
		topo:  topo,
		reg:   reg,
		cks:   make(map[uint64]*keys.ClientKey, cfg.Count),
		conns: make(map[keys.NodeID]*cpConn),
		inbox: make(map[uint64]chan gateway.Reply),
		done:  make(chan struct{}),
	}
	for id := cfg.First; id < cfg.First+cfg.Count; id++ {
		p.cks[id] = cks[id-1]
	}
	return p, nil
}

// Client returns the closed-loop submitter for one logical client ID within
// the pool's range. Each Client must be driven by a single goroutine.
func (p *ClientPool) Client(id uint64) (*Client, error) {
	ck := p.cks[id]
	if ck == nil {
		return nil, fmt.Errorf("massbft: client %d outside pool range", id)
	}
	inbox := make(chan gateway.Reply, 64)
	p.mu.Lock()
	p.inbox[id] = inbox
	p.mu.Unlock()
	return &Client{
		p:     p,
		key:   ck,
		inbox: inbox,
		req: gateway.NewRequester(gateway.RequesterConfig{
			Client:      id,
			Groups:      len(p.topo.Groups),
			Faulty:      p.reg.Faulty,
			Verify:      p.reg.Verify,
			Timeout:     p.cfg.Timeout,
			ExpBackoff:  true,
			MaxAttempts: p.cfg.MaxAttempts,
		}),
	}, nil
}

// Close tears down every gateway connection; in-flight Submits return
// ErrPoolClosed.
func (p *ClientPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.conns
	p.conns = map[keys.NodeID]*cpConn{}
	p.mu.Unlock()
	close(p.done)
	for _, cc := range conns {
		cc.c.Close()
	}
}

// conn returns (dialing if needed) the shared connection to one gateway
// node, nil when the node exposes no gateway or is unreachable right now.
func (p *ClientPool) conn(id keys.NodeID) *cpConn {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	if cc, ok := p.conns[id]; ok {
		p.mu.Unlock()
		return cc
	}
	p.mu.Unlock()

	var addr string
	for _, na := range p.topo.Nodes {
		if na.Group == id.Group && na.Index == id.Index {
			addr = na.Gateway
		}
	}
	if addr == "" {
		return nil
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil
	}
	// Hello: register the pool's whole client ID range on this connection
	// so every member that executes can route its reply back here.
	hello := make([]byte, 0, 17)
	hello = append(hello, gwHello)
	hello = binary.BigEndian.AppendUint64(hello, p.cfg.First)
	hello = binary.BigEndian.AppendUint64(hello, p.cfg.First+p.cfg.Count)
	c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write(transport.AppendFrame(nil, transport.FlagControl, hello)); err != nil {
		c.Close()
		return nil
	}
	c.SetWriteDeadline(time.Time{})

	cc := &cpConn{c: c}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil
	}
	if prev, ok := p.conns[id]; ok { // lost a dial race: keep the first
		p.mu.Unlock()
		c.Close()
		return prev
	}
	p.conns[id] = cc
	p.mu.Unlock()
	go p.readLoop(id, cc)
	return cc
}

// readLoop demultiplexes one connection's replies into per-client inboxes.
// Any error drops the connection; the next send redials.
func (p *ClientPool) readLoop(id keys.NodeID, cc *cpConn) {
	for {
		_, payload, err := transport.ReadFrame(cc.c)
		if err != nil {
			p.dropConn(id, cc)
			return
		}
		msg, err := cluster.DecodeEnvelope(payload)
		if err != nil {
			continue
		}
		rep, ok := msg.(*cluster.ClientReply)
		if !ok {
			continue
		}
		p.mu.Lock()
		inbox := p.inbox[rep.Client]
		p.mu.Unlock()
		if inbox == nil {
			continue
		}
		select {
		case inbox <- gateway.Reply{
			Client: rep.Client, Nonce: rep.Nonce, Status: rep.Status,
			GID: rep.GID, Height: rep.Height, Result: rep.Result,
			Signer: rep.Sig.Signer, Sig: rep.Sig.Sig,
		}:
		default: // slow client: shed — the certificate needs only f+1
		}
	}
}

func (p *ClientPool) dropConn(id keys.NodeID, cc *cpConn) {
	p.mu.Lock()
	if p.conns[id] == cc {
		delete(p.conns, id)
	}
	p.mu.Unlock()
	cc.c.Close()
}

// send writes one ClientRequest frame to node (group g, index j). Errors
// drop the connection; the retry machinery absorbs the loss.
func (p *ClientPool) send(id keys.NodeID, txn types.Transaction) {
	cc := p.conn(id)
	if cc == nil {
		return
	}
	req := &cluster.ClientRequest{Txn: txn}
	enc, err := cluster.EncodeEnvelope(req)
	if err != nil {
		return
	}
	frame := transport.AppendFrame(make([]byte, 0, 12+len(enc)), 0, enc)
	cc.wm.Lock()
	cc.c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_, werr := cc.c.Write(frame)
	cc.wm.Unlock()
	if werr != nil {
		p.dropConn(id, cc)
	}
}

// Client is one closed-loop logical client: at most one request in flight,
// driven by a single goroutine through Submit.
type Client struct {
	p     *ClientPool
	key   *keys.ClientKey
	req   *gateway.Requester
	inbox chan gateway.Reply
	nonce uint64
}

// ID returns the client's registered identity.
func (c *Client) ID() uint64 { return c.key.ID }

// Submit signs and submits one request, blocking until it holds an f+1
// reply certificate (possibly after cross-group resubmission) or gives up.
func (c *Client) Submit(payload []byte) (gateway.Result, error) {
	c.nonce++
	txn := types.Transaction{Client: c.key.ID, Nonce: c.nonce, Payload: payload}
	txn.Sig = c.key.Sign(keys.ClientRequestMessage(txn.Client, txn.Nonce, txn.Payload))

	g := c.req.Begin(c.nonce, time.Now())
	c.deliver(g, txn, false)

	// Poll granularity: fine enough to honor the attempt deadline promptly,
	// coarse enough not to spin.
	tick := c.p.cfg.Timeout / 8
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case rep := <-c.inbox:
			if done, res := c.req.OnReply(rep, time.Now()); done {
				return res, nil
			}
		case <-tk.C:
			resubmit, g, gaveUp := c.req.OnTick(time.Now())
			if gaveUp {
				return gateway.Result{}, ErrGaveUp
			}
			if resubmit {
				c.deliver(g, txn, true)
			}
		case <-c.p.done:
			return gateway.Result{}, ErrPoolClosed
		}
	}
}

// deliver mirrors the submission policy of the simulated hub: fresh
// requests go to one rotated member (it forwards to its leader);
// retransmissions broadcast to the whole group.
func (c *Client) deliver(g int, txn types.Transaction, broadcast bool) {
	size := c.p.topo.Groups[g]
	lo, hi := 0, size
	if !broadcast {
		lo = int((c.key.ID + c.nonce) % uint64(size))
		hi = lo + 1
	}
	for j := lo; j < hi; j++ {
		c.p.send(keys.NodeID{Group: g, Index: j % size}, txn)
	}
}
