package massbft

import (
	"testing"
	"time"
)

// combinedFaultCluster builds the demo's combined-fault preset: 5% WAN loss,
// 1% LAN loss, 1% duplication, 10% jitter, every recovery knob armed. This
// is the exact environment that historically drove the congestion-collapse
// false-death bug (DESIGN.md §13): unbounded retransmission of in-flight
// copies overwhelmed the 20 Mbps WAN NICs, the victim group's certified
// stream went silent behind multi-second queues, both peer groups certified
// suspicions, and a false GroupDead wedged the run.
func combinedFaultCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Groups:             []int{4, 4, 4},
		Workload:           "ycsb-a",
		Seed:               seed,
		Warmup:             time.Second,
		WANDropRate:        0.05,
		LANDropRate:        0.01,
		WANDupRate:         0.01,
		FaultJitter:        0.1,
		ViewChangeTimeout:  400 * time.Millisecond,
		TakeoverTimeout:    400 * time.Millisecond,
		RepairTimeout:      150 * time.Millisecond,
		CheckpointInterval: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCombinedFaultSeedsConverge pins formerly-failing seeds of the
// combined-fault preset as regressions. Before the congestion fixes
// (stream keepalives, progress-gated retransmission, requester-offset
// serving rotations, partition-horizon archive retention) seeds 4 and 5
// ended wedged: a false GroupDead certified against a live group, or a
// laggard stranded beyond every archive window. They must now drain to full
// convergence, with zero certified group deaths.
func TestCombinedFaultSeedsConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	for _, seed := range []int64{4, 5} {
		seed := seed
		t.Run(map[int64]string{4: "seed4", 5: "seed5"}[seed], func(t *testing.T) {
			c := combinedFaultCluster(t, seed)
			c.Run(10 * time.Second)
			rep := c.DrainToAgreement(500*time.Millisecond, 12*time.Second)
			if rep.Verdict != AgreementConverged {
				t.Fatalf("agreement: %v", rep)
			}
			if d := c.Counter("group-deaths"); d != 0 {
				t.Fatalf("certified %d group deaths in a run with no crashed groups", d)
			}
			if c.Counter("forked-detected") != 0 {
				t.Fatalf("forked-detected = %d", c.Counter("forked-detected"))
			}
		})
	}
}

// TestDrainToAgreementFaultFree exercises the public forensics API on a
// clean run: the report must converge quickly, carry a full node census,
// and leave the divergence counters untouched.
func TestDrainToAgreementFaultFree(t *testing.T) {
	c, err := NewCluster(Config{
		Groups:   []int{3, 3},
		Workload: "ycsb-a",
		Seed:     11,
		Warmup:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	rep := c.DrainToAgreement(500*time.Millisecond, 5*time.Second)
	if rep.Verdict != AgreementConverged {
		t.Fatalf("agreement: %v", rep)
	}
	if len(rep.Nodes) != 6 {
		t.Fatalf("census has %d nodes, want 6", len(rep.Nodes))
	}
	for _, n := range rep.Nodes {
		if !n.Live || n.Behind != 0 || n.Height != rep.MaxHeight {
			t.Fatalf("unexpected node status %+v in converged report", n)
		}
	}
	if rep.FirstDivergentHeight != 0 || len(rep.Laggards) != 0 || len(rep.Branches) != 0 {
		t.Fatalf("converged report carries divergence fields: %+v", rep)
	}
	if c.Counter("forked-detected") != 0 || c.Counter("wedged-detected") != 0 {
		t.Fatalf("divergence counters moved on a clean run: forked=%d wedged=%d",
			c.Counter("forked-detected"), c.Counter("wedged-detected"))
	}
}

// TestAgreementReportSeesCrashedNodes checks the census and liveness
// semantics: a crashed node appears in the report as !Live and is never
// judged, so the survivors still classify as converged.
func TestAgreementReportSeesCrashedNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	c, err := NewCluster(Config{
		Groups:             []int{4, 4},
		Workload:           "ycsb-a",
		Seed:               13,
		Warmup:             500 * time.Millisecond,
		ViewChangeTimeout:  400 * time.Millisecond,
		TakeoverTimeout:    400 * time.Millisecond,
		RepairTimeout:      150 * time.Millisecond,
		CheckpointInterval: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.CrashNode(time.Second, 1, 2)
	c.Run(4 * time.Second)
	rep := c.DrainToAgreement(500*time.Millisecond, 6*time.Second)
	if rep.Verdict != AgreementConverged {
		t.Fatalf("agreement with one crashed follower: %v", rep)
	}
	if len(rep.Nodes) != 8 {
		t.Fatalf("census has %d nodes, want 8", len(rep.Nodes))
	}
	down := 0
	for _, n := range rep.Nodes {
		if !n.Live {
			down++
			if n.Group != 1 || n.Index != 2 {
				t.Fatalf("wrong node reported down: %+v", n)
			}
		}
	}
	if down != 1 {
		t.Fatalf("census reports %d down nodes, want 1", down)
	}
}
